"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the algorithm registry with models and summaries.
* ``run`` — execute one algorithm on one workload and print the trace,
  optionally as a space-time diagram.
* ``experiments`` — print the compact experiment tables (the full,
  asserted versions live in ``benchmarks/``).
* ``sweep`` — execute a declarative case grid (stock, or loaded from a
  versioned ``--grid`` JSON file) on the batch engine
  (:mod:`repro.engine`), on a selectable execution backend, optionally
  as one shard of a distributed run.
* ``merge`` — recombine per-shard ``--json`` exports into the
  whole-grid result.
* ``cache stats`` — inspect a result-cache directory (entries, bytes,
  lifetime hit rate).

Examples::

    python -m repro list
    python -m repro run --algorithm att2 --n 5 --t 2 \
        --workload cascade --proposals 3,1,4,1,5 --diagram
    python -m repro experiments
    python -m repro sweep --workers 4 --json sweep.json
    python -m repro sweep --algorithms att2,hurfin_raynal \
        --n 7 --t 3 --cases-per-family 40 --seed 7
    python -m repro sweep --cache .sweep-cache --workers 4
    python -m repro sweep --save-grid grid.json
    python -m repro sweep --grid grid.json --backend threads \
        --shard 0/2 --json shard0.json
    python -m repro merge shard0.json shard1.json --json whole.json
    python -m repro cache stats .sweep-cache

The ``sweep`` grid schema
-------------------------

A grid (:class:`repro.engine.grids.GridSpec`) is the cross product

    ``algorithms × schedule families × proposal pattern``

* **algorithms** — registry names (``python -m repro list``); every
  family instance is run against every algorithm.
* **families** (:class:`repro.engine.grids.FamilySpec`) — each names a
  generator ``kind`` plus parameters.  Seeded kinds (``random_es``,
  ``random_scs``, ``random_serial``) expand into ``count`` instances
  whose per-instance seeds are derived as SHA-256 of
  ``(grid seed, family name, index)``; deterministic kinds
  (``failure_free``, ``cascade``, ``hiding_chain``, ``block``,
  ``killer``, ``async_prefix``, ``rotating``) wrap the structured
  workload generators.
* **proposal pattern** — ``range`` (``0..n-1``) or ``random``
  (per-case seeded).

The CLI exposes the stock grid of
:func:`repro.engine.grids.default_sweep_grid` — seeded ES/SCS/serial
families plus the five structured workloads of experiment E5 — sized by
``--cases-per-family``.  ``--save-grid grid.json`` writes the grid being
run as a versioned JSON file and ``--grid grid.json`` runs one, so
experiment definitions can be shared and diffed without touching Python
(the file round-trips ``GridSpec.to_data``/``from_data`` losslessly).

Backends and shards
-------------------

``--backend`` picks the execution backend (:mod:`repro.engine.executors`):
``processes`` (default; ``--workers N`` sizes the pool, omit to
auto-size), ``threads``, or ``serial``.  Expansion is a pure function of
the spec, records are re-sorted into expansion order after execution, and
every backend therefore yields byte-identical output — any ``--json``
export of the same grid and seed diffs empty.

``--shard I/N`` runs only the cases with ``index % N == I``, so N
machines can split one grid file without coordination; each shard's
``--json`` export carries its case indices, and ``repro merge`` (or
:meth:`repro.engine.results.BatchResult.merge`) recombines the exports —
in any order — into output byte-identical to the unsharded run.

The ``sweep`` result cache
--------------------------

``--cache DIR`` threads a content-addressed on-disk record cache
(:mod:`repro.engine.cache`) through the engine: each case is keyed by
SHA-256 over (key-scheme tag, algorithm name, a source hash of the
algorithm's transitive module closure, a source hash of the simulation
kernel and record machinery, the schedule's canonical digest, the
proposals), so only cache *misses* ever reach the kernel.  Re-running an
identical grid against a warm cache executes zero cases and produces
byte-identical ``--json`` output; editing an algorithm's source
invalidates only that algorithm's entries (and its dependents'), while
editing the kernel or metrics invalidates everything.  The CLI prints
the hit/miss tally after each cached sweep; ``--no-cache`` bypasses a
configured ``--cache`` without having to edit scripted invocations, and
deleting the directory is always safe — it costs only recomputation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.algorithms.registry import available_algorithms, get_factory
from repro.analysis.diagram import render_run
from repro.analysis.metrics import check_consensus, summarize
from repro.analysis.tables import format_table
from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm


def _build_workload(name: str, n: int, t: int, horizon: int,
                    sync_after: int):
    from repro.workloads import (
        async_prefix,
        block_crashes,
        coordinator_killer,
        serial_cascade,
        value_hiding_chain,
    )

    builders = {
        "failure_free": lambda: Schedule.failure_free(n, t, horizon),
        "cascade": lambda: serial_cascade(n, t, horizon),
        "hiding_chain": lambda: value_hiding_chain(n, t, horizon),
        "block": lambda: block_crashes(n, t, horizon),
        "killer2": lambda: coordinator_killer(n, t, horizon,
                                              rounds_per_cycle=2),
        "killer3": lambda: coordinator_killer(n, t, horizon,
                                              rounds_per_cycle=3),
        "async_prefix": lambda: async_prefix(n, t, horizon, k=sync_after),
    }
    if name not in builders:
        known = ", ".join(sorted(builders))
        raise SystemExit(f"unknown workload {name!r}; known: {known}")
    return builders[name]()


def _cmd_list(_args) -> int:
    rows = [
        (info.name, info.model, info.summary)
        for info in available_algorithms().values()
    ]
    print(format_table(["name", "model", "summary"], rows,
                       title="Registered consensus algorithms"))
    return 0


def _cmd_run(args) -> int:
    factory = get_factory(args.algorithm)
    schedule = _build_workload(
        args.workload, args.n, args.t, args.horizon, args.sync_after
    )
    if args.proposals:
        try:
            proposals = [int(v) for v in args.proposals.split(",")]
        except ValueError:
            raise SystemExit(
                f"proposals must be comma-separated integers, "
                f"got {args.proposals!r}"
            )
        if len(proposals) != args.n:
            raise SystemExit(
                f"need {args.n} proposals, got {len(proposals)}"
            )
    else:
        proposals = list(range(args.n))

    trace = run_algorithm(factory, schedule, proposals)
    print(schedule.describe())
    print()
    if args.diagram:
        print(render_run(trace, title=f"{args.algorithm} on "
                                      f"{args.workload}"))
        print()
    print(trace.describe())
    summary = summarize(trace)
    print(f"\nglobal decision round: {summary.global_round}")
    problems = check_consensus(trace, expect_termination=False)
    if problems:
        print("CONSENSUS VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("consensus properties: ok")
    return 0


def _ensure_writable(path: str, flag: str = "--json") -> None:
    """Fail fast if *path* cannot be written — before minutes of compute.

    Opens in append mode so an existing export is never truncated; a file
    the probe itself created is removed again, so a sweep that later fails
    leaves no misleading empty export behind.  *flag* names the offending
    option in the error message.
    """
    existed = os.path.exists(path)
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"cannot write {flag} output {path!r}: {exc}")
    if not existed:
        try:
            os.remove(path)
        except OSError:
            pass


def _parse_workers(args) -> int | None:
    """The validated ``--workers`` value (``None`` = auto-size).

    Explicit non-positive counts are rejected up front with a clean
    message; historically ``--workers 0`` silently meant "auto", which
    made typos indistinguishable from intent.
    """
    if args.workers is None:
        return None
    if args.workers < 1:
        raise SystemExit(
            f"--workers must be >= 1, got {args.workers} "
            f"(omit the flag to auto-size)"
        )
    return args.workers


def _parse_shard(args):
    """The validated ``--shard`` spec, or ``None``."""
    from repro.engine import GridError, ShardSpec

    if not args.shard:
        return None
    try:
        return ShardSpec.parse(args.shard)
    except GridError as exc:
        raise SystemExit(f"invalid --shard: {exc}")


#: Grid-shaping sweep flags, every one defaulting to ``None`` in the
#: parser so "explicitly passed" is detectable — a grid file defines the
#: whole experiment, and silently ignoring an explicit flag next to
#: ``--grid`` would let someone believe they swept a seed they didn't.
_GRID_SHAPE_FLAGS = (
    ("--n", "n"),
    ("--t", "t"),
    ("--algorithms", "algorithms"),
    ("--cases-per-family", "cases_per_family"),
    ("--seed", "seed"),
    ("--proposals-mode", "proposals_mode"),
)


def _load_grid(args):
    """The grid to sweep: ``--grid FILE``, or the stock grid from flags."""
    from repro.engine import GridError, GridSpec, default_sweep_grid
    from repro.engine.grids import DEFAULT_SWEEP_ALGORITHMS

    if args.grid:
        explicit = [
            flag for flag, attr in _GRID_SHAPE_FLAGS
            if getattr(args, attr) is not None
        ]
        if explicit:
            raise SystemExit(
                f"--grid and {', '.join(explicit)} are mutually exclusive: "
                f"the grid file already defines the experiment"
            )
        try:
            return GridSpec.load(args.grid)
        except OSError as exc:
            raise SystemExit(f"cannot read --grid {args.grid!r}: {exc}")
        except GridError as exc:
            raise SystemExit(f"invalid --grid {args.grid!r}: {exc}")
    algorithms = (
        tuple(name.strip() for name in args.algorithms.split(",") if name)
        if args.algorithms
        else DEFAULT_SWEEP_ALGORITHMS
    )
    return default_sweep_grid(
        args.n if args.n is not None else 5,
        args.t if args.t is not None else 2,
        seed=args.seed if args.seed is not None else 0,
        algorithms=algorithms,
        cases_per_family=(
            args.cases_per_family
            if args.cases_per_family is not None
            else 12
        ),
        proposal_mode=args.proposals_mode or "random",
    )


def _cmd_sweep(args) -> int:
    from repro.engine import (
        AlgorithmSummary,
        ExecutorError,
        ResultCache,
        expand_grid,
        resolve_executor,
        run_batch,
    )

    workers = _parse_workers(args)
    shard = _parse_shard(args)
    grid = _load_grid(args)
    try:
        executor = resolve_executor(args.backend, workers=workers)
    except ExecutorError as exc:
        raise SystemExit(str(exc))
    if args.json:
        _ensure_writable(args.json)
    if args.save_grid:
        _ensure_writable(args.save_grid, flag="--save-grid")
        try:
            grid.save(args.save_grid)
        except OSError as exc:
            raise SystemExit(
                f"cannot write --save-grid {args.save_grid!r}: {exc}"
            )
    cache = None
    if args.cache and not args.no_cache:
        try:
            cache = ResultCache(args.cache)
        except OSError as exc:
            raise SystemExit(
                f"cannot use --cache directory {args.cache!r}: {exc}"
            )

    cases = expand_grid(grid)
    if shard is not None:
        cases = shard.select(cases)
        sharding = f", {shard.describe()} of {grid.case_count}"
    else:
        sharding = ""
    print(
        f"sweep: {len(cases)} cases ({len(grid.algorithms)} algorithms x "
        f"{sum(f.count for f in grid.families)} schedules{sharding}), "
        f"seed={grid.seed}, backend={executor.name}"
    )
    result = run_batch(cases, executor=executor, cache=cache)
    rows = [summary.row() for summary in result.summaries()]
    print()
    print(format_table(
        list(AlgorithmSummary.ROW_HEADERS), rows,
        title=f"Batch sweep (n={grid.n}, t={grid.t})",
    ))
    if cache is not None:
        print(f"\n{cache.describe()}")
        cache.flush_stats()
    violations = result.violations()
    if args.json:
        result.save(args.json)
        print(f"\nwrote {result.case_count} records to {args.json}")
    if violations:
        print(f"\nSAFETY VIOLATIONS in {len(violations)} cases:")
        for record in violations:
            print(f"  - {record.algorithm} on {record.workload}")
        return 1
    print("\nsafety (agreement + validity): ok on every case")
    return 0


def _cmd_merge(args) -> int:
    """Recombine per-shard ``--json`` exports into the whole-grid result."""
    from repro.engine import BatchResult

    _ensure_writable(args.json)
    results = []
    for path in args.inputs:
        try:
            results.append(BatchResult.load(path))
        except OSError as exc:
            raise SystemExit(f"cannot read shard {path!r}: {exc}")
        except (ValueError, TypeError, KeyError) as exc:
            raise SystemExit(f"invalid shard export {path!r}: {exc}")
    if any(
        record.case_index < 0
        for result in results
        for record in result.records
    ):
        raise SystemExit(
            "shard exports contain records without case indices; "
            "only engine-produced exports can be merged canonically"
        )
    try:
        merged = BatchResult.merge(results)
    except ValueError as exc:
        raise SystemExit(str(exc))
    merged.save(args.json)
    print(
        f"merged {merged.case_count} records from {len(args.inputs)} "
        f"shards into {args.json}"
    )
    return 0


def _cmd_cache_stats(args) -> int:
    """Report entry count, size and lifetime hit rate of a cache dir."""
    from repro.engine import cache_stats

    try:
        stats = cache_stats(args.directory)
    except OSError as exc:
        raise SystemExit(f"cannot read cache directory: {exc}")
    print(
        f"cache {args.directory}: {stats['entries']} entries, "
        f"{stats['total_bytes']} bytes"
    )
    if stats["hit_rate"] is None:
        print("lifetime: no recorded sweeps")
    else:
        extras = ""
        if stats["deduped"]:
            extras += f", {stats['deduped']} deduped"
        if stats["store_failures"]:
            extras += f", {stats['store_failures']} store failures"
        print(
            f"lifetime: {stats['hits']} hits, {stats['misses']} misses"
            f"{extras} over {stats['sweeps']} sweeps "
            f"(hit rate {100 * stats['hit_rate']:.1f}%)"
        )
    return 0


def _cmd_cache(args) -> int:
    handlers = {"stats": _cmd_cache_stats}
    return handlers[args.cache_command](args)


def _cmd_experiments(_args) -> int:
    from repro.analysis.experiments import all_experiments

    for title, headers, rows in all_experiments():
        print(format_table(headers, rows, title=title))
        print()
    print("(Full, asserted experiment suite: "
          "pytest benchmarks/ --benchmark-only)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The inherent price of indulgence' "
                    "(Dutta & Guerraoui, PODC 2002).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms")

    run_parser = sub.add_parser("run", help="run one algorithm on one "
                                            "workload")
    run_parser.add_argument("--algorithm", default="att2")
    run_parser.add_argument("--n", type=int, default=5)
    run_parser.add_argument("--t", type=int, default=2)
    run_parser.add_argument("--workload", default="failure_free")
    run_parser.add_argument("--horizon", type=int, default=24)
    run_parser.add_argument("--sync-after", type=int, default=3,
                            help="async prefix length for async_prefix")
    run_parser.add_argument("--proposals", default="",
                            help="comma-separated ints (default 0..n-1)")
    run_parser.add_argument("--diagram", action="store_true",
                            help="print a space-time diagram")

    sub.add_parser("experiments", help="print the experiment tables")

    sweep_parser = sub.add_parser(
        "sweep",
        help="run a declarative case grid on the batch engine",
    )
    sweep_parser.add_argument(
        "--grid", default="",
        help="run a grid spec from this JSON file (see --save-grid) "
             "instead of building the stock grid from flags",
    )
    sweep_parser.add_argument(
        "--save-grid", default="",
        help="write the grid being run to this JSON file (versionable; "
             "re-runnable via --grid)",
    )
    # Grid-shaping flags default to None so _load_grid can reject any of
    # them passed explicitly alongside --grid (see _GRID_SHAPE_FLAGS).
    sweep_parser.add_argument("--n", type=int, default=None,
                              help="processes per case (default 5)")
    sweep_parser.add_argument("--t", type=int, default=None,
                              help="resilience bound (default 2)")
    sweep_parser.add_argument(
        "--algorithms", default=None,
        help="comma-separated registry names (default: the five E5 "
             "algorithms)",
    )
    sweep_parser.add_argument(
        "--cases-per-family", type=int, default=None,
        help="instances per seeded schedule family (default 12)",
    )
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="master seed for the grid (default 0)")
    sweep_parser.add_argument(
        "--backend", choices=("serial", "processes", "threads"),
        default="processes",
        help="execution backend (default processes)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for processes/threads backends "
             "(default: auto-size to the machine)",
    )
    sweep_parser.add_argument(
        "--shard", default="",
        help="run only shard I of N (format I/N, e.g. 0/2); merge the "
             "per-shard --json exports with `repro merge`",
    )
    sweep_parser.add_argument(
        "--proposals-mode", choices=("range", "random"), default=None,
        help="proposal pattern per case (default random)",
    )
    sweep_parser.add_argument("--json", default="",
                              help="write all records to this JSON file")
    sweep_parser.add_argument(
        "--cache", default="",
        help="content-addressed result cache directory: repeated "
             "identical grids only execute cache misses",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass --cache (run every case) without editing scripts",
    )

    merge_parser = sub.add_parser(
        "merge",
        help="recombine per-shard sweep --json exports canonically",
    )
    merge_parser.add_argument(
        "inputs", nargs="+",
        help="shard export files (any order)",
    )
    merge_parser.add_argument(
        "--json", required=True,
        help="write the merged result to this JSON file",
    )

    cache_parser = sub.add_parser(
        "cache",
        help="inspect a result-cache directory",
    )
    cache_sub = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    stats_parser = cache_sub.add_parser(
        "stats",
        help="entry count, total bytes and lifetime hit rate",
    )
    stats_parser.add_argument("directory", help="cache directory to inspect")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiments": _cmd_experiments,
        "sweep": _cmd_sweep,
        "merge": _cmd_merge,
        "cache": _cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
