"""The eventually perfect failure detector ◇P.

◇P provides strong completeness and *eventual* strong accuracy: there is a
time after which correct processes are not suspected by any correct
process.  The paper's Section 4 shows ES simulates ◇P; experiment E11
checks this on generated ES schedules, including the sharper statement
that accuracy holds from the schedule's synchrony round onwards (once all
faulty processes have crashed and no message is delayed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import DetectorHistory


@dataclass(frozen=True)
class EventuallyPerfect:
    """Property bundle for ◇P."""

    name: str = "◇P"

    @staticmethod
    def violations(history: DetectorHistory) -> list[str]:
        problems = []
        if history.strong_completeness_round() is None:
            problems.append(
                "strong completeness: some faulty process is not "
                "permanently suspected within the horizon"
            )
        if history.eventual_strong_accuracy_round() is None:
            problems.append(
                "eventual strong accuracy: correct processes keep being "
                "suspected up to the horizon"
            )
        return problems

    @classmethod
    def satisfied_by(cls, history: DetectorHistory) -> bool:
        return not cls.violations(history)
