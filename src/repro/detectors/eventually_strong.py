"""The eventually strong failure detector ◇S.

◇S weakens ◇P's accuracy to *eventual weak accuracy*: there is a time
after which **some** correct process is never suspected by any correct
process.  ◇S is the weakest detector class for consensus (with a majority
of correct processes), and the paper's A_◇S (Figure 3) and the
Hurfin–Raynal / Chandra–Toueg baselines rely on it.  Anything satisfying
◇P satisfies ◇S; the checkers let tests confirm the containment on
simulated histories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import DetectorHistory


@dataclass(frozen=True)
class EventuallyStrong:
    """Property bundle for ◇S."""

    name: str = "◇S"

    @staticmethod
    def violations(history: DetectorHistory) -> list[str]:
        problems = []
        if history.strong_completeness_round() is None:
            problems.append(
                "strong completeness: some faulty process is not "
                "permanently suspected within the horizon"
            )
        if history.eventual_weak_accuracy_round() is None:
            problems.append(
                "eventual weak accuracy: every correct process keeps being "
                "suspected by some correct process up to the horizon"
            )
        return problems

    @classmethod
    def satisfied_by(cls, history: DetectorHistory) -> bool:
        return not cls.violations(history)
