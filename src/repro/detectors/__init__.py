"""Failure detectors: histories, simulated outputs, and property checkers.

Section 4 of the paper relates ES to asynchronous round-based models
enriched with unreliable failure detectors (Chandra & Toueg): ES can
*simulate* the output of ◇P (and hence ◇S) by suspecting, in round k,
exactly the processes from which no round-k message arrived in round k.

This package makes that simulation executable and checkable:

* :mod:`repro.detectors.base` — failure-detector histories and the
  completeness / accuracy predicates;
* :mod:`repro.detectors.simulation` — the Section-4 output derived from a
  schedule or trace;
* :mod:`repro.detectors.perfect`, :mod:`repro.detectors.eventually_perfect`,
  :mod:`repro.detectors.eventually_strong` — the detector classes P, ◇P and
  ◇S as property bundles.
"""

from repro.detectors.base import DetectorHistory
from repro.detectors.eventually_perfect import EventuallyPerfect
from repro.detectors.eventually_strong import EventuallyStrong
from repro.detectors.perfect import Perfect
from repro.detectors.simulation import simulate_from_schedule

__all__ = [
    "DetectorHistory",
    "Perfect",
    "EventuallyPerfect",
    "EventuallyStrong",
    "simulate_from_schedule",
]
