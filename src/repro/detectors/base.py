"""Failure-detector histories and the building-block predicates.

A :class:`DetectorHistory` records, for every process and round, the set of
processes the local failure-detector module suspected.  The classic
properties (Chandra & Toueg 1996) are expressed over a finite simulated
window: "eventually" means "from some round within the horizon onwards".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.types import ProcessId, Round


@dataclass(frozen=True)
class DetectorHistory:
    """Suspicion outputs of a failure detector over one run.

    Attributes:
        n: number of processes.
        horizon: last round covered.
        outputs: ``outputs[(pid, k)]`` is the set of processes *pid*'s
            module suspected in round k.  Processes that crashed (or
            halted) before round k have no entry.
        correct: the processes that never crash in the run.
        crash_rounds: crash round of each faulty process.
    """

    n: int
    horizon: Round
    outputs: Mapping[tuple[ProcessId, Round], frozenset[ProcessId]]
    correct: frozenset[ProcessId]
    crash_rounds: Mapping[ProcessId, Round] = field(default_factory=dict)

    @property
    def faulty(self) -> frozenset[ProcessId]:
        return frozenset(self.crash_rounds)

    def output(self, pid: ProcessId, k: Round) -> frozenset[ProcessId] | None:
        return self.outputs.get((pid, k))

    # -- completeness ----------------------------------------------------

    def strong_completeness_round(self) -> Round | None:
        """Smallest K from which every correct process always suspects every faulty one.

        Returns ``None`` if no such K exists within the horizon (strong
        completeness does not hold in the window).
        """
        return self._stabilization_round(self._complete_at)

    def _complete_at(self, k: Round) -> bool:
        for pid in self.correct:
            suspected = self.output(pid, k)
            if suspected is None:
                return False
            if not self.faulty <= suspected:
                return False
        return True

    # -- accuracy ----------------------------------------------------------

    def strong_accuracy_holds(self) -> bool:
        """No process is suspected before it crashes (the P accuracy)."""
        for (pid, k), suspected in self.outputs.items():
            del pid
            for q in suspected:
                crash = self.crash_rounds.get(q)
                if crash is None or crash > k:
                    return False
        return True

    def eventual_strong_accuracy_round(self) -> Round | None:
        """Smallest K from which no correct process suspects any correct process."""
        return self._stabilization_round(self._accurate_at)

    def _accurate_at(self, k: Round) -> bool:
        for pid in self.correct:
            suspected = self.output(pid, k)
            if suspected is None:
                continue
            if suspected & self.correct:
                return False
        return True

    def eventual_weak_accuracy_round(self) -> Round | None:
        """Smallest K from which *some* correct process is never suspected by correct processes."""
        best: Round | None = None
        for candidate in sorted(self.correct):
            stab = self._stabilization_round(
                lambda k, c=candidate: self._unsuspected_at(c, k)
            )
            if stab is not None and (best is None or stab < best):
                best = stab
        return best

    def _unsuspected_at(self, candidate: ProcessId, k: Round) -> bool:
        for pid in self.correct:
            suspected = self.output(pid, k)
            if suspected is not None and candidate in suspected:
                return False
        return True

    # -- helpers -------------------------------------------------------------

    def _stabilization_round(self, predicate) -> Round | None:
        """Smallest K such that *predicate* holds for every round in [K, horizon]."""
        first_bad = 0
        for k in range(1, self.horizon + 1):
            if not predicate(k):
                first_bad = k
        if first_bad == self.horizon and not predicate(self.horizon):
            return None
        return first_bad + 1

    def false_suspicions(self) -> list[tuple[ProcessId, Round, ProcessId]]:
        """All (observer, round, suspect) triples where the suspect had not crashed."""
        mistakes = []
        for (pid, k), suspected in sorted(self.outputs.items()):
            for q in sorted(suspected):
                crash = self.crash_rounds.get(q)
                if crash is None or crash > k:
                    mistakes.append((pid, k, q))
        return mistakes
