"""The Section-4 simulation of failure detectors from ES.

The paper (Section 4): "on receiving messages of round k in ES, the
simulated failure detector output is changed to the set of processes from
which no message was received in round k of ES".  Consequently, after the
round K from which (a) no message is delayed and (b) every faulty process
has crashed, the simulated output satisfies the ◇P properties — and a
fortiori ◇S.

Two entry points: :func:`simulate_from_schedule` derives the history
analytically from the schedule (what an always-listening process would
output), and :func:`simulate_from_trace` extracts it from an executed
trace (what the algorithm actually observed, absent for halted processes).
"""

from __future__ import annotations

from repro.detectors.base import DetectorHistory
from repro.model.constraints import suspected_by
from repro.model.schedule import Schedule
from repro.sim.trace import Trace
from repro.types import ProcessId, Round


def simulate_from_schedule(schedule: Schedule) -> DetectorHistory:
    """The simulated ◇P output for every process completing each round."""
    outputs: dict[tuple[ProcessId, Round], frozenset[ProcessId]] = {}
    for k in range(1, schedule.horizon + 1):
        for pid in schedule.processes:
            if not schedule.completes_round(pid, k):
                continue
            outputs[(pid, k)] = suspected_by(schedule, pid, k)
    return DetectorHistory(
        n=schedule.n,
        horizon=schedule.horizon,
        outputs=outputs,
        correct=schedule.correct,
        crash_rounds={
            pid: spec.round for pid, spec in schedule.crashes.items()
        },
    )


def simulate_from_trace(trace: Trace) -> DetectorHistory:
    """The simulated output as observed in an executed run.

    Unlike :func:`simulate_from_schedule`, a process that halted stops
    producing outputs, and processes that halted also stop *sending*, so
    late rounds may suspect them — matching what an algorithm layered on
    the simulation would genuinely see.
    """
    outputs: dict[tuple[ProcessId, Round], frozenset[ProcessId]] = {}
    everyone = frozenset(range(trace.n))
    for rec in trace.rounds:
        for pid, inbox in rec.delivered.items():
            heard = {m.sender for m in inbox if m.sent_round == rec.round}
            outputs[(pid, rec.round)] = everyone - heard - {pid}
    return DetectorHistory(
        n=trace.n,
        horizon=trace.rounds_executed,
        outputs=outputs,
        correct=trace.schedule.correct,
        crash_rounds={
            pid: spec.round
            for pid, spec in trace.schedule.crashes.items()
        },
    )
