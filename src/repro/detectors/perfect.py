"""The perfect failure detector P (strong completeness + strong accuracy).

P never makes mistakes: no process is suspected before it crashes, and
crashed processes are eventually suspected forever.  FloodSetWS assumes P;
the tests verify that the simulated detector restricted to SCS-legal
(synchronous) schedules is perfect — which is exactly why, in synchronous
runs, every suspicion in A_{t+2}'s Halt sets is backed by a real crash
(Claim 13.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.base import DetectorHistory


@dataclass(frozen=True)
class Perfect:
    """Property bundle for P."""

    name: str = "P"

    @staticmethod
    def violations(history: DetectorHistory) -> list[str]:
        problems = []
        if not history.strong_accuracy_holds():
            mistakes = history.false_suspicions()
            observer, k, suspect = mistakes[0]
            problems.append(
                f"strong accuracy: p{observer} suspected non-crashed "
                f"p{suspect} in round {k} "
                f"({len(mistakes)} false suspicions in total)"
            )
        if history.strong_completeness_round() is None:
            problems.append(
                "strong completeness: some faulty process is not "
                "permanently suspected within the horizon"
            )
        return problems

    @classmethod
    def satisfied_by(cls, history: DetectorHistory) -> bool:
        return not cls.violations(history)
