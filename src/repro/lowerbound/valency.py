"""Valency of serial partial runs, computed by exhaustive extension.

Following the paper's Section 2: a k-round serial partial run is 0-valent
(1-valent) if every serial extension decides 0 (1), and *bivalent* if both
decisions are reachable.  For the small systems the experiments use, the
serial extension space is enumerated exhaustively, so the computed valency
is exact — provided ``crash_rounds_limit`` covers every round in which a
crash can still change the decision value (for A_{t+2} and FloodSet,
decisions in serial runs happen at t + 2 and t + 1 respectively, so t + 2
suffices; pass more for slower baselines).
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.errors import SimulationError
from repro.lowerbound.serial_runs import (
    Events,
    enumerate_serial_extensions,
    enumerate_serial_partial_runs,
    run_with_events,
)
from repro.types import Round, Value


def valency(
    factory: AlgorithmFactory,
    proposals: Sequence[Value],
    events: Events,
    *,
    t: int,
    prefix_rounds: Round,
    crash_rounds_limit: Round | None = None,
    horizon: Round | None = None,
) -> frozenset[Value]:
    """The set of decision values over all serial extensions of *events*.

    Args:
        events: the crash events of the k-round serial partial run
            (k = *prefix_rounds*; all event rounds must be <= k).
        crash_rounds_limit: last round in which extensions may crash
            (default t + 2).
        horizon: simulated horizon (default crash_rounds_limit + 4, enough
            for decision plus DECIDE propagation in the fast algorithms).

    Returns:
        The decision-value set; ``len() > 1`` means bivalent.  Raises if
        some extension fails to decide within the horizon (a liveness bug
        or a too-small horizon — never expected for the shipped
        algorithms).
    """
    n = len(proposals)
    limit = (t + 2) if crash_rounds_limit is None else crash_rounds_limit
    sim_horizon = (limit + 4) if horizon is None else horizon
    values: set[Value] = set()
    for extension in enumerate_serial_extensions(
        n, t, events, from_round=prefix_rounds + 1, upto_round=limit
    ):
        trace = run_with_events(
            factory, proposals, extension, t=t, horizon=sim_horizon
        )
        decided = trace.decided_values()
        if not decided:
            raise SimulationError(
                f"serial extension {extension} undecided within "
                f"{sim_horizon} rounds; increase horizon"
            )
        values.update(decided)
        if len(values) > 1:
            break
    return frozenset(values)


def is_bivalent(
    factory: AlgorithmFactory,
    proposals: Sequence[Value],
    events: Events,
    *,
    t: int,
    prefix_rounds: Round,
    crash_rounds_limit: Round | None = None,
) -> bool:
    return (
        len(
            valency(
                factory,
                proposals,
                events,
                t=t,
                prefix_rounds=prefix_rounds,
                crash_rounds_limit=crash_rounds_limit,
            )
        )
        > 1
    )


def classify_partial_runs(
    factory: AlgorithmFactory,
    proposals: Sequence[Value],
    *,
    t: int,
    prefix_rounds: Round,
    crash_rounds_limit: Round | None = None,
) -> list[tuple[Events, frozenset[Value]]]:
    """Valency of **every** *prefix_rounds*-round serial partial run.

    The executable form of the paper's Lemma 2 / Lemma 5 dichotomy: for a
    t + 1-deciding algorithm in its model (FloodSet in SCS) every t-round
    serial partial run must be univalent, while for A_{t+2} some t-round
    serial partial run is bivalent — the certificate that one more round
    is unavoidable.
    """
    n = len(proposals)
    results = []
    for events in enumerate_serial_partial_runs(n, t, prefix_rounds):
        results.append(
            (
                events,
                valency(
                    factory,
                    proposals,
                    events,
                    t=t,
                    prefix_rounds=prefix_rounds,
                    crash_rounds_limit=crash_rounds_limit,
                ),
            )
        )
    return results
