"""Exhaustive enumeration of serial runs.

A *serial* run (paper, Section 2) is a synchronous run with at most one
crash per round and at most t crashes overall.  A serial partial run is
fully described by its crash events — which process crashed in which round
and which receivers still got its final message — because synchronous
rounds leave the adversary no other choice.  That makes the space finite
and small for the (n, t) the bivalency experiments use, so valency can be
computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterator, Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.sim.trace import Trace
from repro.types import ProcessId, Round, Value, validate_system_size


@dataclass(frozen=True, order=True)
class CrashEvent:
    """One crash in a serial run.

    Attributes:
        round: the round in which the process crashes.
        pid: the crashing process.
        delivered_to: receivers of its final (crash-round) message; all
            other processes lose it.
    """

    round: Round
    pid: ProcessId
    delivered_to: frozenset[ProcessId]


Events = tuple[CrashEvent, ...]


def schedule_from_events(
    n: int, t: int, events: Sequence[CrashEvent], horizon: Round
) -> Schedule:
    """The synchronous schedule realizing the given crash events."""
    builder = ScheduleBuilder(n, t, horizon)
    for event in events:
        builder.crash(
            event.pid, event.round, delivered_to=event.delivered_to
        )
    return builder.build()


def run_with_events(
    factory: AlgorithmFactory,
    proposals: Sequence[Value],
    events: Sequence[CrashEvent],
    *,
    t: int,
    horizon: Round,
) -> Trace:
    """Execute *factory* on the serial schedule defined by *events*."""
    n = len(proposals)
    schedule = schedule_from_events(n, t, events, horizon)
    return run_algorithm(factory, schedule, proposals)


def _subsets(items: Sequence[ProcessId]) -> Iterator[frozenset[ProcessId]]:
    return (
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(items, size) for size in range(len(items) + 1)
        )
    )


def one_round_options(
    n: int, t: int, events: Events, k: Round
) -> Iterator[Events]:
    """All serial choices for round *k* on top of *events*.

    Either nobody crashes, or one not-yet-crashed process crashes with an
    arbitrary subset of the currently alive processes receiving its final
    message (delivery to already-crashed processes is unobservable, so
    those subsets are skipped).
    """
    yield events
    if len(events) >= t:
        return
    crashed = {event.pid for event in events}
    alive = [p for p in range(n) if p not in crashed]
    for pid in alive:
        receivers = [q for q in alive if q != pid]
        for subset in _subsets(receivers):
            yield events + (CrashEvent(round=k, pid=pid,
                                       delivered_to=subset),)


def enumerate_serial_extensions(
    n: int,
    t: int,
    events: Events,
    *,
    from_round: Round,
    upto_round: Round,
) -> Iterator[Events]:
    """All serial crash patterns extending *events* through *upto_round*.

    Crashes are only placed in rounds ``from_round .. upto_round``; the
    caller chooses ``upto_round`` at least as large as the last round in
    which a crash can still influence the decision value of the algorithm
    under study.
    """
    if from_round > upto_round:
        yield events
        return
    for option in one_round_options(n, t, events, from_round):
        yield from enumerate_serial_extensions(
            n, t, option, from_round=from_round + 1, upto_round=upto_round
        )


def enumerate_serial_partial_runs(
    n: int, t: int, upto_round: Round
) -> Iterator[Events]:
    """All serial crash patterns over rounds 1 .. upto_round."""
    validate_system_size(n, t)
    yield from enumerate_serial_extensions(
        n, t, (), from_round=1, upto_round=upto_round
    )


def worst_case_serial(
    factory: AlgorithmFactory,
    proposals: Sequence[Value],
    *,
    t: int,
    crash_rounds_limit: Round,
    horizon: Round,
) -> tuple[Round, Events, Round, Events]:
    """Exhaustive worst/best-case global decision round over serial runs.

    Explores every serial crash pattern with crashes in rounds
    ``1 .. crash_rounds_limit`` and returns ``(worst_round, worst_events,
    best_round, best_events)``.  Runs that do not decide within *horizon*
    count as ``horizon + 1``.
    """
    n = len(proposals)
    worst: Round = -1
    best: Round = horizon + 2
    worst_events: Events = ()
    best_events: Events = ()
    for events in enumerate_serial_partial_runs(n, t, crash_rounds_limit):
        trace = run_with_events(
            factory, proposals, events, t=t, horizon=horizon
        )
        global_round = trace.global_decision_round()
        if global_round is None:
            global_round = horizon + 1
        if global_round > worst:
            worst, worst_events = global_round, events
        if global_round < best:
            best, best_events = global_round, events
    return worst, worst_events, best, best_events
