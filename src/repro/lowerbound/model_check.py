"""Bounded exhaustive model checking of consensus safety in ES.

The serial-run enumeration (:mod:`repro.lowerbound.serial_runs`) covers
every *synchronous* adversary; this module extends the exhaustive search
to **asynchronous** adversaries with bounded budgets: up to
``max_delays_per_round`` delayed messages in each of the first
``async_rounds`` rounds, combined with up to ``max_crashes`` crashes (one
per round).  Every complete schedule in the budget is executed and checked
for validity and uniform agreement — if an algorithm has a safety bug
reachable within the budget (as FloodSetWS does), the checker returns the
witness schedule.

This is how the paper's safety claims are verified against *all* small
adversaries rather than sampled ones: false suspicions are exactly
delayed messages, so the budget directly bounds the amount of
"indulgence" the algorithm must display.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterator, Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.analysis.metrics import check_agreement, check_validity
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.types import ProcessId, Round, Value, validate_system_size


@dataclass(frozen=True)
class AdversaryBudget:
    """Bounds on the explored adversary.

    Attributes:
        max_crashes: total crash budget (at most one crash per round, in
            rounds 1..crash_rounds).
        crash_rounds: last round in which a crash may be scheduled.
        async_rounds: rounds 1..async_rounds may contain delayed messages
            (the bounded asynchronous prefix; later rounds are
            synchronous, so runs terminate).
        max_delays_per_round: how many (sender → receiver) messages may be
            delayed in one round.
        delay_span: delayed messages arrive this many rounds late.
    """

    max_crashes: int = 1
    crash_rounds: Round = 2
    async_rounds: Round = 2
    max_delays_per_round: int = 1
    delay_span: Round = 1


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one exhaustive exploration."""

    runs: int
    decided_runs: int
    worst_global_round: Round | None
    best_global_round: Round | None
    violation: Schedule | None = None
    violation_detail: tuple[str, ...] = field(default=())

    @property
    def safe(self) -> bool:
        return self.violation is None


@dataclass(frozen=True)
class _Move:
    """One round's adversary choice."""

    crash: tuple[ProcessId, frozenset[ProcessId]] | None
    delays: tuple[tuple[ProcessId, ProcessId], ...]


def _round_moves(
    n: int,
    k: Round,
    crashed: frozenset[ProcessId],
    crash_budget: int,
    budget: AdversaryBudget,
) -> Iterator[_Move]:
    alive = [p for p in range(n) if p not in crashed]
    crash_options: list[tuple[ProcessId, frozenset[ProcessId]] | None]
    crash_options = [None]
    if crash_budget > 0 and k <= budget.crash_rounds:
        for pid in alive:
            receivers = [q for q in alive if q != pid]
            for size in range(len(receivers) + 1):
                for subset in combinations(receivers, size):
                    crash_options.append((pid, frozenset(subset)))

    for crash in crash_options:
        crasher = crash[0] if crash else None
        senders = [p for p in alive if p != crasher]
        pairs = [
            (s, r)
            for s in senders
            for r in alive
            if r != s and r != crasher
        ]
        delay_sets: list[tuple[tuple[ProcessId, ProcessId], ...]] = [()]
        if k <= budget.async_rounds:
            for size in range(1, budget.max_delays_per_round + 1):
                delay_sets.extend(combinations(pairs, size))
        for delays in delay_sets:
            yield _Move(crash=crash, delays=delays)


def _schedules(
    n: int,
    t: int,
    budget: AdversaryBudget,
    horizon: Round,
) -> Iterator[Schedule]:
    last_move_round = max(budget.crash_rounds, budget.async_rounds)

    def extend(
        k: Round,
        crashed: frozenset[ProcessId],
        crash_budget: int,
        moves: tuple[_Move, ...],
    ) -> Iterator[tuple[_Move, ...]]:
        if k > last_move_round:
            yield moves
            return
        for move in _round_moves(n, k, crashed, crash_budget, budget):
            new_crashed = crashed
            new_budget = crash_budget
            if move.crash is not None:
                new_crashed = crashed | {move.crash[0]}
                new_budget -= 1
            yield from extend(
                k + 1, new_crashed, new_budget, moves + (move,)
            )

    for moves in extend(1, frozenset(), min(budget.max_crashes, t), ()):
        builder = ScheduleBuilder(n, t, horizon)
        for index, move in enumerate(moves):
            k = index + 1
            if move.crash is not None:
                pid, delivered = move.crash
                builder.crash(pid, k, delivered_to=delivered)
            for sender, receiver in move.delays:
                until = min(k + budget.delay_span, horizon)
                if until > k:
                    builder.delay(sender, receiver, k, until)
        yield builder.build()


def check_consensus_safety(
    factory: AlgorithmFactory,
    proposals: Sequence[Value],
    *,
    t: int,
    budget: AdversaryBudget | None = None,
    horizon: Round | None = None,
) -> CheckResult:
    """Exhaustively check validity + uniform agreement within the budget.

    Termination is *not* asserted (the horizon may simply be too short for
    slow fallbacks); undecided runs are counted separately.  Returns the
    first violating schedule found, if any — FloodSetWS yields one within
    the default budget, A_{t+2} must not.
    """
    n = len(proposals)
    validate_system_size(n, t)
    budget = budget or AdversaryBudget()
    sim_horizon = horizon or (
        max(budget.crash_rounds, budget.async_rounds) + t + 12
    )

    runs = 0
    decided = 0
    worst: Round | None = None
    best: Round | None = None
    for schedule in _schedules(n, t, budget, sim_horizon):
        runs += 1
        trace = run_algorithm(factory, schedule, proposals)
        problems = check_validity(trace) + check_agreement(trace)
        if problems:
            return CheckResult(
                runs=runs,
                decided_runs=decided,
                worst_global_round=worst,
                best_global_round=best,
                violation=schedule,
                violation_detail=tuple(problems),
            )
        global_round = trace.global_decision_round()
        if global_round is not None:
            decided += 1
            worst = global_round if worst is None else max(worst, global_round)
            best = global_round if best is None else min(best, global_round)
    return CheckResult(
        runs=runs,
        decided_runs=decided,
        worst_global_round=worst,
        best_global_round=best,
    )
