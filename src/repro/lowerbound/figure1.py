"""The five-run gadget of Claim 5.1 (paper, Figure 1), machine-checked.

The heart of the t + 2 lower bound builds, on top of a (t−1)-round serial
prefix, five runs whose rounds t and t + 1 interleave crashes, false
suspicions and delayed messages:

* **s1** — synchronous: p'_1 crashes in round t, its final message lost to
  the suspect set S; no crashes afterwards.
* **s0** — synchronous: like s1 but p'_{i+1} *does* receive the message
  (lost only to S \\ {p'_{i+1}}).
* **a2** — asynchronous: p'_1 does not crash; its round-t messages to S
  are *delayed* to round t + 2 (false suspicions); p'_{i+1} crashes at the
  start of round t + 1.  Let k' be the round at which a2 reaches a global
  decision.
* **a1** — like a2 through round t; in round t + 1, everyone falsely
  suspects p'_{i+1} (its messages are delayed past k') and p'_{i+1}
  falsely suspects p'_1; p'_{i+1} crashes at the start of round t + 2.
* **a0** — like a1, except p'_1's round-t message *reaches* p'_{i+1}
  (delays only to S \\ {p'_{i+1}}).

The proof's indistinguishability claims, all checkable on concrete traces
of any deterministic algorithm:

1. p'_{i+1} cannot distinguish a1 from s1 at the end of round t + 1;
2. p'_{i+1} cannot distinguish a0 from s0 at the end of round t + 1;
3. no process other than p'_{i+1} (and the prefix crashers) can
   distinguish a2, a1 and a0 by the end of round k'.

For an algorithm that decided by round t + 1 in synchronous runs, (1) and
(2) would force p'_{i+1} to decide s1's value in a1 and s0's value in a0,
while (3) forces everyone else to a single common value across a1 and a0 —
a contradiction whenever s1 and s0 decide differently (which the canonical
configuration arranges via a value-hiding prefix).  That is the inherent
price of indulgence; real ES algorithms escape it only by not deciding at
round t + 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.errors import SimulationError
from repro.lowerbound.indistinguishability import (
    decision_consistency,
    distinguishers,
)
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.sim.trace import Trace, views_equal
from repro.types import ProcessId, Round, Value, validate_indulgent_resilience


@dataclass(frozen=True)
class FigureOneConfig:
    """Parameters of the gadget.

    Attributes:
        n, t: system size (0 < t < n/2).
        proposals: one proposal per process.
        p_one: the paper's p'_1 — falsely suspected in round t.
        p_i_plus_1: the paper's p'_{i+1} — the pivotal process.
        suspects: the paper's {p'_2 .. p'_{i+1}} — processes that miss
            p'_1's round-t message in s1/a2/a1.  Must contain p_i_plus_1.
        prefix: crash round of each (t−1)-prefix crasher, as a mapping
            pid -> (round, delivered_to).
    """

    n: int
    t: int
    proposals: tuple[Value, ...]
    p_one: ProcessId
    p_i_plus_1: ProcessId
    suspects: frozenset[ProcessId]
    prefix: Mapping[ProcessId, tuple[Round, tuple[ProcessId, ...]]]


def canonical_config(n: int, t: int) -> FigureOneConfig:
    """The flagship configuration: a value-hiding chain makes s1 and s0 diverge.

    Processes p_0 .. p_{t−2} crash in rounds 1 .. t−1, each handing the
    hidden minimum proposal 0 to the next; p'_1 = p_{t−1} is the last
    carrier.  S contains every remaining process, and p'_{i+1} = p_t is the
    only process that receives the carrier's final message in s0.  Then s0
    decides 0 and s1 decides 1, so the gadget exhibits real bivalence.
    """
    validate_indulgent_resilience(n, t)
    proposals = tuple(0 if pid == 0 else 1 for pid in range(n))
    prefix = {
        pid: (pid + 1, (pid + 1,))
        for pid in range(t - 1)
    }
    p_one = t - 1
    alive = [pid for pid in range(n) if pid >= t]
    return FigureOneConfig(
        n=n,
        t=t,
        proposals=proposals,
        p_one=p_one,
        p_i_plus_1=alive[0],
        suspects=frozenset(alive),
        prefix=prefix,
    )


@dataclass(frozen=True)
class FigureOneReport:
    """The five traces plus the machine-checked claims."""

    config: FigureOneConfig
    k_prime: Round
    traces: Mapping[str, Trace]
    claim_a1_s1: bool
    claim_a0_s0: bool
    claim_common: bool
    determinism_issues: tuple[str, ...]

    @property
    def all_claims_hold(self) -> bool:
        return (
            self.claim_a1_s1
            and self.claim_a0_s0
            and self.claim_common
            and not self.determinism_issues
        )

    def decision_table(self) -> list[tuple[str, object, object]]:
        """(run, decision values, global decision round) rows."""
        rows = []
        for name in ("s1", "s0", "a2", "a1", "a0"):
            trace = self.traces[name]
            rows.append(
                (
                    name,
                    sorted(trace.decided_values(), key=repr),
                    trace.global_decision_round(),
                )
            )
        return rows


class _GadgetBuilder:
    """Shared schedule-building logic for the five runs."""

    def __init__(self, config: FigureOneConfig, horizon: Round):
        self.config = config
        self.horizon = horizon

    def _base(self) -> ScheduleBuilder:
        builder = ScheduleBuilder(self.config.n, self.config.t, self.horizon)
        for pid, (round_, delivered) in sorted(self.config.prefix.items()):
            builder.crash(pid, round_, delivered_to=delivered)
        return builder

    def _alive_after_prefix(self) -> list[ProcessId]:
        return [
            pid
            for pid in range(self.config.n)
            if pid not in self.config.prefix and pid != self.config.p_one
        ]

    def synchronous(self, missing: frozenset[ProcessId]) -> Schedule:
        """s1 / s0: p'_1 crashes in round t, message lost to *missing*."""
        builder = self._base()
        delivered = [
            pid for pid in self._alive_after_prefix() if pid not in missing
        ]
        builder.crash(
            self.config.p_one, self.config.t, delivered_to=delivered
        )
        return builder.build()

    def _delay_round_t(
        self, builder: ScheduleBuilder, missing: frozenset[ProcessId]
    ) -> None:
        for receiver in sorted(missing):
            builder.delay(
                self.config.p_one, receiver, self.config.t, self.config.t + 2
            )

    def a2(self) -> Schedule:
        builder = self._base()
        self._delay_round_t(builder, self.config.suspects)
        builder.crash(self.config.p_i_plus_1, self.config.t + 1,
                      delivered_to=())
        return builder.build()

    def a1_or_a0(
        self, missing: frozenset[ProcessId], k_prime: Round
    ) -> Schedule:
        builder = self._base()
        self._delay_round_t(builder, missing)
        pivot = self.config.p_i_plus_1
        # Round t+1: everyone falsely suspects the pivot...
        for receiver in range(self.config.n):
            if receiver != pivot:
                builder.delay(pivot, receiver, self.config.t + 1,
                              k_prime + 1)
        # ... and the pivot falsely suspects p'_1.
        builder.delay(self.config.p_one, pivot, self.config.t + 1,
                      k_prime + 1)
        builder.crash(pivot, self.config.t + 2, delivered_to=())
        return builder.build()


def build_figure_one(
    factory: AlgorithmFactory,
    config: FigureOneConfig | None = None,
    *,
    n: int | None = None,
    t: int | None = None,
    horizon_slack: Round = 24,
) -> FigureOneReport:
    """Construct the five runs for *factory* and check the claims.

    Either pass an explicit *config* or just (n, t) for the canonical one.
    """
    if config is None:
        if n is None or t is None:
            raise ValueError("pass a config, or both n and t")
        config = canonical_config(n, t)
    proposals: Sequence[Value] = config.proposals
    t_ = config.t

    # Probe a2 to learn k', the round of its global decision.
    probe_horizon = t_ + 2 + horizon_slack
    probe = _GadgetBuilder(config, probe_horizon)
    a2_probe = run_algorithm(factory, probe.a2(), proposals)
    k_prime = a2_probe.global_decision_round()
    if k_prime is None:
        raise SimulationError(
            f"a2 did not reach a global decision within {probe_horizon} "
            f"rounds; increase horizon_slack"
        )

    horizon = k_prime + 2
    gadget = _GadgetBuilder(config, horizon)
    pivot = config.p_i_plus_1
    suspects_minus = config.suspects - {pivot}

    traces = {
        "s1": run_algorithm(
            factory, gadget.synchronous(config.suspects), proposals
        ),
        "s0": run_algorithm(
            factory, gadget.synchronous(suspects_minus), proposals
        ),
        "a2": run_algorithm(factory, gadget.a2(), proposals),
        "a1": run_algorithm(
            factory, gadget.a1_or_a0(config.suspects, k_prime), proposals
        ),
        "a0": run_algorithm(
            factory, gadget.a1_or_a0(suspects_minus, k_prime), proposals
        ),
    }

    claim_a1_s1 = views_equal(traces["a1"], traces["s1"], pivot, t_ + 1)
    claim_a0_s0 = views_equal(traces["a0"], traces["s0"], pivot, t_ + 1)

    observers = (
        frozenset(range(config.n))
        - {pivot}
        - frozenset(config.prefix)
    )
    claim_common = True
    for first, second in (("a2", "a1"), ("a1", "a0"), ("a2", "a0")):
        diff = distinguishers(
            traces[first], traces[second], upto=k_prime
        )
        if diff & observers:
            claim_common = False

    issues: list[str] = []
    for first, second in (("a2", "a1"), ("a1", "a0"), ("a2", "a0")):
        issues.extend(
            decision_consistency(
                traces[first], traces[second], upto=k_prime
            )
        )

    return FigureOneReport(
        config=config,
        k_prime=k_prime,
        traces=traces,
        claim_a1_s1=claim_a1_s1,
        claim_a0_s0=claim_a0_s0,
        claim_common=claim_common,
        determinism_issues=tuple(issues),
    )
