"""Lower-bound machinery: the paper's Section 2, mechanized.

The t + 2 lower bound (Proposition 1) is a bivalency argument over
*serial* runs — synchronous runs with at most one crash per round — plus a
final step (Claim 5.1, Figure 1) in which carefully delayed messages make
asynchronous runs indistinguishable from synchronous ones.  This package
makes each ingredient executable against any algorithm automaton:

* :mod:`repro.lowerbound.serial_runs` — exhaustive enumeration of serial
  partial runs and their extensions;
* :mod:`repro.lowerbound.valency` — decision-value sets (0-valent /
  1-valent / bivalent) of partial runs, computed by exhaustive extension;
* :mod:`repro.lowerbound.bivalency` — Lemma 3 (bivalent initial
  configurations) and Lemma 4/5 (bivalent k-round serial partial runs) as
  searches;
* :mod:`repro.lowerbound.indistinguishability` — view-equality utilities;
* :mod:`repro.lowerbound.figure1` — the five-run gadget s1, s0, a2, a1, a0
  of Claim 5.1, constructed for real algorithms with machine-checked
  indistinguishability claims.
"""

from repro.lowerbound.bivalency import (
    find_bivalent_initial,
    find_bivalent_serial_prefix,
    initial_valencies,
)
from repro.lowerbound.figure1 import FigureOneReport, build_figure_one
from repro.lowerbound.indistinguishability import distinguishers
from repro.lowerbound.model_check import (
    AdversaryBudget,
    CheckResult,
    check_consensus_safety,
)
from repro.lowerbound.serial_runs import (
    CrashEvent,
    enumerate_serial_extensions,
    enumerate_serial_partial_runs,
    schedule_from_events,
    worst_case_serial,
)
from repro.lowerbound.valency import classify_partial_runs, valency

__all__ = [
    "CrashEvent",
    "schedule_from_events",
    "enumerate_serial_partial_runs",
    "enumerate_serial_extensions",
    "worst_case_serial",
    "valency",
    "classify_partial_runs",
    "initial_valencies",
    "find_bivalent_initial",
    "find_bivalent_serial_prefix",
    "distinguishers",
    "FigureOneReport",
    "build_figure_one",
    "AdversaryBudget",
    "CheckResult",
    "check_consensus_safety",
]
