"""View-equality utilities for indistinguishability arguments."""

from __future__ import annotations

from repro.sim.trace import Trace
from repro.types import ProcessId, Round


def distinguishers(
    trace_a: Trace, trace_b: Trace, *, upto: Round
) -> frozenset[ProcessId]:
    """Processes whose local views differ between the runs through *upto*.

    A process outside this set cannot tell the two runs apart by the end
    of round *upto*; since automata are deterministic, its state — and any
    decision it has taken by then — is identical in both runs.
    """
    if trace_a.n != trace_b.n:
        raise ValueError("traces compare runs of different system sizes")
    return frozenset(
        pid
        for pid in range(trace_a.n)
        if trace_a.view(pid, upto) != trace_b.view(pid, upto)
    )


def views_equal_for(
    trace_a: Trace,
    trace_b: Trace,
    pids: frozenset[ProcessId] | set[ProcessId],
    *,
    upto: Round,
) -> bool:
    """True iff none of *pids* can distinguish the runs through *upto*."""
    return not (distinguishers(trace_a, trace_b, upto=upto) & frozenset(pids))


def first_divergence_round(
    trace_a: Trace, trace_b: Trace, pid: ProcessId, *, upto: Round
) -> Round | None:
    """The first round at which *pid*'s views differ, or ``None``."""
    for k in range(1, upto + 1):
        if trace_a.view(pid, k) != trace_b.view(pid, k):
            return k
    return None


def decision_consistency(
    trace_a: Trace, trace_b: Trace, *, upto: Round
) -> list[str]:
    """Determinism cross-check: equal views through *upto* force equal decisions.

    Returns violations — a non-empty result would indicate a bug in the
    kernel or a non-deterministic automaton, never expected.
    """
    problems = []
    same_view = frozenset(range(trace_a.n)) - distinguishers(
        trace_a, trace_b, upto=upto
    )
    for pid in sorted(same_view):
        round_a = trace_a.decision_round(pid)
        round_b = trace_b.decision_round(pid)
        early_a = round_a is not None and round_a <= upto
        early_b = round_b is not None and round_b <= upto
        if early_a != early_b:
            problems.append(
                f"p{pid} decided by round {upto} in one run only "
                f"despite equal views"
            )
        elif early_a and early_b:
            if trace_a.decision_value(pid) != trace_b.decision_value(pid):
                problems.append(
                    f"p{pid} decided {trace_a.decision_value(pid)!r} vs "
                    f"{trace_b.decision_value(pid)!r} despite equal views"
                )
    return problems
