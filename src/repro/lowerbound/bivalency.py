"""Bivalent configurations and partial runs (paper, Lemmas 3–5).

* Lemma 3: some initial configuration is bivalent.  The proof walks the
  chain C_0 .. C_n (C_i: the first i processes propose 1, the rest 0) and
  shows adjacent univalent configurations must share a valency — so a
  bivalent one exists whenever t >= 1.  :func:`find_bivalent_initial`
  performs exactly this walk.
* Lemma 4: a bivalent (t−1)-round serial partial run exists.
  :func:`find_bivalent_serial_prefix` searches for a bivalent k-round
  prefix by greedy extension of bivalent prefixes (trying every one-round
  serial option), mirroring the induction.
* Lemma 5: A bivalent *t*-round serial partial run exists for indulgent
  algorithms — found by the same search with ``target_round=t`` — whereas
  the t + 1-round-deciding FloodSet in SCS has none (Lemma 2's
  contrapositive).  Experiment E2 tabulates both.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.lowerbound.serial_runs import Events, one_round_options
from repro.lowerbound.valency import valency
from repro.types import Round, Value


def chain_configurations(n: int, zero: Value = 0, one: Value = 1) -> list[list[Value]]:
    """The proposal chains C_0 .. C_n of Lemma 3 (C_i: first i propose 1)."""
    return [
        [one] * i + [zero] * (n - i)
        for i in range(n + 1)
    ]


def initial_valencies(
    factory: AlgorithmFactory,
    n: int,
    t: int,
    *,
    crash_rounds_limit: Round | None = None,
) -> list[tuple[list[Value], frozenset[Value]]]:
    """Valency of every chain configuration C_0 .. C_n."""
    return [
        (
            proposals,
            valency(
                factory,
                proposals,
                (),
                t=t,
                prefix_rounds=0,
                crash_rounds_limit=crash_rounds_limit,
            ),
        )
        for proposals in chain_configurations(n)
    ]


def find_bivalent_initial(
    factory: AlgorithmFactory,
    n: int,
    t: int,
    *,
    crash_rounds_limit: Round | None = None,
) -> list[Value] | None:
    """The first bivalent configuration along the Lemma-3 chain, if any."""
    for proposals, vals in initial_valencies(
        factory, n, t, crash_rounds_limit=crash_rounds_limit
    ):
        if len(vals) > 1:
            return proposals
    return None


def find_bivalent_serial_prefix(
    factory: AlgorithmFactory,
    proposals: Sequence[Value],
    *,
    t: int,
    target_round: Round,
    crash_rounds_limit: Round | None = None,
) -> Events | None:
    """A bivalent *target_round*-round serial partial run, or ``None``.

    Depth-first search over serial prefixes keeping only bivalent ones, as
    in the Lemma-4 induction.  ``target_round = 0`` asks whether the
    initial configuration itself is bivalent.
    """
    n = len(proposals)

    def bivalent(events: Events, k: Round) -> bool:
        return (
            len(
                valency(
                    factory,
                    proposals,
                    events,
                    t=t,
                    prefix_rounds=k,
                    crash_rounds_limit=crash_rounds_limit,
                )
            )
            > 1
        )

    def extend(events: Events, k: Round) -> Events | None:
        if k == target_round:
            return events
        for option in one_round_options(n, t, events, k + 1):
            if bivalent(option, k + 1):
                found = extend(option, k + 1)
                if found is not None:
                    return found
        return None

    if not bivalent((), 0):
        return None
    return extend((), 0)
