"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ScheduleError(ReproError):
    """An adversary schedule is internally inconsistent.

    Raised while *building* a schedule, e.g. a message is both delayed and
    lost, a delivery round precedes the sending round, or a crashed process
    is scheduled to send in a later round.
    """


class ModelViolation(ReproError):
    """A schedule violates the constraints of the model it claims to obey.

    Raised by the SCS / ES validators when asked to *enforce* (rather than
    merely report) the model constraints.
    """


class SimulationError(ReproError):
    """The simulation kernel detected an impossible condition at run time."""


class AlgorithmError(ReproError):
    """An algorithm automaton was driven outside its contract.

    Examples: delivering messages for a round the automaton already
    completed, or asking a halted automaton for a payload.
    """


class ConsensusViolation(ReproError):
    """A consensus safety property (validity / agreement) was violated.

    Raised by the checking utilities in :mod:`repro.analysis.metrics` when a
    trace exhibits disagreement or an invented decision value.  The paper's
    resilience-price demonstration (t >= n/2) triggers this deliberately.
    """
