"""Build the paper's Figure 1: the five runs behind the t + 2 lower bound.

Usage::

    python examples/figure1_construction.py

Claim 5.1 of the paper constructs two synchronous runs (s1, s0) and three
asynchronous runs (a2, a1, a0) such that an algorithm deciding at round
t + 1 in synchronous runs is forced into disagreement.  This script builds
all five runs for the real algorithm A_{t+2}, machine-checks the
indistinguishability claims on the traces, and shows how A_{t+2} escapes
the trap: by never deciding before t + 2.
"""

from repro import ATt2
from repro.analysis.tables import format_table
from repro.lowerbound.figure1 import build_figure_one, canonical_config


def main():
    n, t = 5, 2
    config = canonical_config(n, t)
    print(f"System: n={n}, t={t}; proposals {list(config.proposals)}")
    print(f"Value-hiding prefix crashes: {dict(config.prefix)}")
    print(f"p'_1 = p{config.p_one} (the falsely suspected carrier), "
          f"p'_i+1 = p{config.p_i_plus_1} (the pivotal process)")
    print(f"suspect set S = {sorted(config.suspects)}")

    report = build_figure_one(ATt2.factory(), config)
    pivot = config.p_i_plus_1

    print("\nThe five runs (rounds t and t+1 are where they differ):")
    for name in ("s1", "s0", "a2", "a1", "a0"):
        print(f"\n--- {name} ---")
        print(report.traces[name].schedule.describe())

    print("\n" + format_table(
        ["run", "decision values", "global decision round"],
        [(run, str(values), str(round_))
         for run, values, round_ in report.decision_table()],
        title="Decisions",
    ))

    print(f"\nk' (a2's global decision round) = {report.k_prime}")
    print("\nMachine-checked indistinguishability claims:")
    print(f"  p{pivot} cannot tell a1 from s1 through round t+1: "
          f"{report.claim_a1_s1}")
    print(f"  p{pivot} cannot tell a0 from s0 through round t+1: "
          f"{report.claim_a0_s0}")
    print(f"  nobody else can tell a2/a1/a0 apart through round k': "
          f"{report.claim_common}")

    s1, s0 = report.traces["s1"], report.traces["s0"]
    a1, a0 = report.traces["a1"], report.traces["a0"]
    print("\nThe trap, spelled out:")
    print(f"  s1 decides {s1.decided_values()}, s0 decides "
          f"{s0.decided_values()} — both are synchronous runs.")
    print(f"  If the algorithm decided at t+1 = {t + 1} in synchronous "
          f"runs, p{pivot} would decide")
    print(f"  {s1.decided_values()} in a1 and {s0.decided_values()} in a0 "
          f"(its views are identical),")
    print("  while every other process, unable to distinguish a1 from a0,")
    print("  would decide one common value in both — a contradiction.")
    print(f"\nHow A_t+2 escapes: p{pivot} decides nothing by round t+1 "
          f"(in a1 it decided at round "
          f"{a1.decision_round(pivot)}), and the other processes decide "
          f"{a1.decided_values() | a0.decided_values()} in both runs.")
    print("The one extra round is not an artifact — it is the price of "
          "indulgence.")


if __name__ == "__main__":
    main()
