"""The headline experiment: how many rounds does indulgence cost?

Usage::

    python examples/price_of_indulgence.py

Reproduces the paper's central comparison on worst-case synchronous runs:

* FloodSet, designed for the synchronous model SCS, decides in t + 1
  rounds — but is *not* indulgent: one false suspicion breaks it.
* A_{t+2}, the paper's algorithm for the eventually synchronous model ES,
  decides in t + 2 rounds in every synchronous run — and Proposition 1
  shows no indulgent algorithm can do better.  The price is one round.
* The previously best indulgent algorithm (Hurfin–Raynal style) pays
  2t + 2.
"""

from repro import (
    ATt2,
    ChandraTouegES,
    FloodSet,
    FloodSetWS,
    HurfinRaynalES,
    Schedule,
    ScheduleBuilder,
    run_algorithm,
)
from repro.analysis.metrics import check_agreement
from repro.analysis.sweep import worst_case_round
from repro.analysis.tables import format_table
from repro.workloads import coordinator_killer, serial_cascade, value_hiding_chain


def worst_case_table(n, t):
    workloads = [
        ("failure_free", Schedule.failure_free(n, t, 24)),
        ("cascade", serial_cascade(n, t, 24)),
        ("hiding_chain", value_hiding_chain(n, t, 24)),
        ("killer2", coordinator_killer(n, t, 24, rounds_per_cycle=2)),
        ("killer3", coordinator_killer(n, t, 24, rounds_per_cycle=3)),
    ]
    rows = []
    for name, factory, formula in (
        ("FloodSet (SCS, not indulgent)", FloodSet, f"t+1 = {t + 1}"),
        ("A_t+2 (ES, this paper)", ATt2.factory(), f"t+2 = {t + 2}"),
        ("Hurfin-Raynal (ES)", HurfinRaynalES, f"2t+2 = {2 * t + 2}"),
        ("Chandra-Toueg (ES)", ChandraTouegES, f"3t+3 = {3 * t + 3}"),
    ):
        worst, witness = worst_case_round(factory, workloads, list(range(n)))
        rows.append((name, worst, formula, witness))
    return rows


def why_not_floodset(n=3, t=1):
    """FloodSetWS disagrees under a single burst of false suspicions."""
    builder = ScheduleBuilder(n, t, 6)
    for k in (1, 2):
        builder.delay(0, 1, k, 3)
        builder.delay(0, 2, k, 3)
    schedule = builder.build()
    trace = run_algorithm(FloodSetWS, schedule, [0, 1, 1])
    return trace, check_agreement(trace)


def main():
    n, t = 5, 2
    print(format_table(
        ["algorithm", "worst synchronous round", "paper", "witness"],
        worst_case_table(n, t),
        title=f"Worst-case global decision round over synchronous runs "
              f"(n={n}, t={t})",
    ))

    print("\nWhy not just run FloodSet in ES?  Because it is not indulgent:")
    trace, violations = why_not_floodset()
    print(f"  under false suspicions it decides {dict(trace.decisions)}")
    for violation in violations:
        print(f"  -> {violation}")
    print("  A_t+2 runs the same flood, plus one round that detects the")
    print("  false suspicion (|Halt| > t) and falls back safely.")


if __name__ == "__main__":
    main()
