"""Quickstart: run the paper's algorithm A_{t+2} on a few adversary schedules.

Usage::

    python examples/quickstart.py

Walks through the core API: build a schedule, run an algorithm against it,
inspect the trace, and check the consensus properties.
"""

from repro import ATt2, Schedule, ScheduleBuilder, run_algorithm
from repro.analysis.metrics import assert_consensus, summarize


def section(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    n, t = 5, 2
    proposals = [3, 1, 4, 1, 5]

    section("1. A failure-free synchronous run")
    schedule = Schedule.failure_free(n, t, horizon=10)
    trace = run_algorithm(ATt2.factory(), schedule, proposals)
    assert_consensus(trace)
    print(trace.describe())
    print(f"global decision round: {trace.global_decision_round()} "
          f"(the paper's t + 2 = {t + 2})")

    section("2. A synchronous run with a crash cascade (still t + 2)")
    schedule = Schedule.synchronous(
        n, t, horizon=10,
        crashes={0: (1, [1]), 4: (2, [])},  # p0 dies telling only p1
    )
    trace = run_algorithm(ATt2.factory(), schedule, proposals)
    assert_consensus(trace)
    print(schedule.describe())
    print(f"decisions: {dict(trace.decisions)}")
    print(f"global decision round: {trace.global_decision_round()}")

    section("3. An asynchronous prefix: indulgence at work")
    builder = ScheduleBuilder(n, t, horizon=24)
    for k in (1, 2, 3):  # p0 is 'slow' for three rounds: false suspicions
        for receiver in range(1, n):
            builder.delay(0, receiver, k, k + 1)
    schedule = builder.build()
    trace = run_algorithm(ATt2.factory(), schedule, proposals)
    assert_consensus(trace)
    summary = summarize(trace)
    print(f"synchronous from round K = {summary.sync_from}")
    print(f"decisions: {dict(trace.decisions)}")
    print("False suspicions delayed the decision past t + 2 — but never")
    print("corrupted it: that is what 'indulgent' means.")


if __name__ == "__main__":
    main()
