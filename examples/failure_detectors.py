"""Simulating failure detectors from ES (the paper's Section 4).

Usage::

    python examples/failure_detectors.py

ES can emulate the asynchronous round model enriched with ◇P / ◇S: in
round k, suspect exactly the processes whose round-k message did not
arrive in round k.  This script derives the simulated detector output for
a synchronous run (it is *perfect*) and for an eventually synchronous run
(it is *eventually perfect*), and locates the stabilization rounds.
"""

from repro import Schedule
from repro.analysis.tables import format_table
from repro.detectors import (
    EventuallyPerfect,
    Perfect,
    simulate_from_schedule,
)
from repro.workloads import rotating_delays


def show_history(schedule, title, upto=None):
    history = simulate_from_schedule(schedule)
    upto = upto or schedule.horizon
    rows = []
    for k in range(1, upto + 1):
        cells = [k]
        for pid in range(schedule.n):
            output = history.output(pid, k)
            cells.append(
                "-" if output is None else
                ("{}" if not output else str(sorted(output)))
            )
        rows.append(cells)
    headers = ["round"] + [f"p{pid} suspects" for pid in
                           range(schedule.n)]
    print(format_table(headers, rows, title=title))
    return history


def main():
    print("1. A synchronous run: p2 crashes in round 2 (telling only p0).")
    schedule = Schedule.synchronous(4, 1, 6, crashes={2: (2, [0])})
    history = show_history(schedule, "Simulated detector output", upto=4)
    print(f"   perfect (P)? {Perfect.satisfied_by(history)}")
    print(f"   strong accuracy (never a false suspicion)? "
          f"{history.strong_accuracy_holds()}")
    print("   In synchronous runs every suspicion is backed by a crash —")
    print("   exactly why A_t+2's Halt sets stay small (Claim 13.1).\n")

    print("2. An eventually synchronous run: rotating slow senders for 4 "
          "rounds.")
    schedule = rotating_delays(4, 1, 10, async_rounds=4)
    history = show_history(schedule, "Simulated detector output", upto=6)
    print(f"   perfect? {Perfect.satisfied_by(history)}  "
          f"(false suspicions: {len(history.false_suspicions())})")
    print(f"   eventually perfect (◇P)? "
          f"{EventuallyPerfect.satisfied_by(history)}")
    print(f"   accuracy stabilizes at round "
          f"{history.eventual_strong_accuracy_round()} "
          f"(schedule synchronous from K={schedule.sync_from()})")


if __name__ == "__main__":
    main()
