"""Eventual synchrony: A_{f+2} vs the leader-based AMR, and split-brain.

Usage::

    python examples/eventual_synchrony.py

Two experiments from the paper's Section 6 and introduction:

1. Runs that become synchronous after round k, with f crashes after k:
   A_{f+2} (t < n/3) globally decides by round k + f + 2, the two-step
   leader-based AMR by k + 2f + 2.
2. The resilience price: with t >= n/2, an ES-legal partition drives an
   indulgent algorithm into split-brain disagreement — the reason all of
   the above assumes a correct majority.
"""

from repro import AFPlus2, AMRLeaderES, ATt2, run_algorithm
from repro.analysis.metrics import assert_consensus, check_agreement
from repro.analysis.tables import format_table
from repro.workloads import async_prefix, partitioned_prefix


def eventual_fast_table(n=7, t=2):
    rows = []
    for k in (0, 2, 4):
        for f in (0, 1, 2):
            schedule = async_prefix(n, t, k + f + 10, k=k, crashes_after=f)
            afp2 = assert_consensus(
                run_algorithm(AFPlus2, schedule, list(range(n)))
            )
            amr = assert_consensus(
                run_algorithm(AMRLeaderES, schedule, list(range(n)))
            )
            rows.append((
                k, f,
                afp2.global_decision_round(), k + f + 2,
                amr.global_decision_round(), k + 2 * f + 2,
            ))
    return rows


def split_brain(n=4, t=2):
    schedule = partitioned_prefix(n, t, 10, rounds=8, heal_at=10)
    factory = ATt2.factory(allow_unsafe_resilience=True)
    trace = run_algorithm(factory, schedule, [0, 0, 1, 1])
    return trace


def main():
    print(format_table(
        ["k (async prefix)", "f (late crashes)",
         "A_f+2", "bound k+f+2", "AMR", "bound k+2f+2"],
        eventual_fast_table(),
        title="Eventual fast decision (n=7, t=2): the paper's Lemma 15",
    ))
    print("\nA_f+2 halves the post-synchrony latency of the leader-based")
    print("baseline by folding leader election into the estimate flood.")

    print("\n--- The resilience price (t >= n/2) ---")
    trace = split_brain()
    print(f"partitioned halves decided: {dict(trace.decisions)}")
    for violation in check_agreement(trace):
        print(f"  -> {violation}")
    print("Each half saw n - t messages per round (ES-legal!), suspected")
    print("the other half, found |Halt| <= t — no evidence of false")
    print("suspicion — and confidently decided its own minimum.  This is")
    print("why indulgent consensus requires a correct majority.")


if __name__ == "__main__":
    main()
