"""Print the full experiment report: every table from EXPERIMENTS.md.

Usage::

    python examples/experiments_report.py

Runs the compact versions of the paper's experiments (the asserted,
timed versions live in ``benchmarks/``) and prints each table with its
paper reference.  This is the script behind EXPERIMENTS.md.
"""

from repro.analysis.experiments import all_experiments
from repro.analysis.tables import format_table

PAPER_NOTES = {
    "E5": "Sections 1.3-1.4: t+1 (SCS) vs t+2 (ES) vs 2t+2 (prior best).",
    "E6": "Section 5.1 / Figure 3: the A_dS vs Hurfin-Raynal gap grows "
          "linearly in t.",
    "E7": "Section 5.2 / Figure 4: 2 rounds failure-free is optimal for "
          "well-behaved runs.",
    "E8": "Section 6 / Figure 5: A_f+2 decides by k+f+2; AMR needs "
          "k+2f+2 (footnote 10).",
    "E10": "Introduction: the resilience price — a correct majority is "
           "necessary.",
    "E11": "Section 4: ES simulates Diamond-P (and hence Diamond-S).",
}


def main():
    print("The inherent price of indulgence — experiment report")
    print("=" * 68)
    for title, headers, rows in all_experiments():
        experiment_id = title.split(":", 1)[0]
        print()
        print(format_table(headers, rows, title=title))
        note = PAPER_NOTES.get(experiment_id)
        if note:
            print(f"  paper: {note}")
    print()
    print("Exhaustive experiments (E1-E4, E9) and all assertions:")
    print("  pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
