"""E3 — Figure 1: the five-run gadget of Claim 5.1, machine-checked.

Builds s1, s0, a2, a1, a0 for each algorithm and (n, t), verifies the
three indistinguishability claims, and prints the decision table.  In the
canonical configuration the two synchronous runs genuinely decide 1 and 0
(the gadget sits on a bivalent prefix), so any algorithm deciding at
round t + 1 in synchronous runs would be driven into disagreement — the
engine of the t + 2 lower bound.
"""

import pytest

from repro import ADiamondS, ATt2, HurfinRaynalES
from repro.analysis.tables import format_table
from repro.lowerbound.figure1 import build_figure_one

from conftest import emit

CASES = [
    ("att2", lambda: ATt2.factory(), 3, 1),
    ("att2", lambda: ATt2.factory(), 4, 1),
    ("att2", lambda: ATt2.factory(), 5, 2),
    ("adiamond_s", lambda: ADiamondS.factory(), 5, 2),
    ("hurfin_raynal", lambda: HurfinRaynalES, 5, 2),
]


@pytest.mark.parametrize("name,make,n,t", CASES)
def test_figure_one_gadget(benchmark, name, make, n, t):
    report = benchmark.pedantic(
        build_figure_one, args=(make(),), kwargs={"n": n, "t": t},
        rounds=1, iterations=1,
    )
    rows = [
        (run, str(values), str(global_round))
        for run, values, global_round in report.decision_table()
    ]
    rows.append(("k'", "-", str(report.k_prime)))
    emit(
        format_table(
            ["run", "decisions", "global round"],
            rows,
            title=f"E3: Figure-1 gadget, {name} (n={n}, t={t})",
        )
    )
    assert report.claim_a1_s1, "pivot distinguishes a1 from s1 by t+1"
    assert report.claim_a0_s0, "pivot distinguishes a0 from s0 by t+1"
    assert report.claim_common, "an observer distinguishes a2/a1/a0 by k'"
    assert not report.determinism_issues
    # The canonical configuration realizes genuine bivalence.
    assert report.traces["s1"].decided_values() == {1}
    assert report.traces["s0"].decided_values() == {0}
