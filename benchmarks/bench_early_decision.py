"""E9 — Section 6: early decision in runs with few failures.

The corollary of Proposition 1: for every f <= t, some synchronous run of
ES with at most f crashes decides at round >= f + 2.  We verify it
exhaustively on the implemented algorithms (restricting the serial
enumeration to <= f crashes), and contrast with the early-deciding SCS
algorithm that achieves min(f + 2, t + 1) — showing early decision is
where the two worlds meet (for 0 < f < t - 1, both pay f + 2).
"""

import pytest

from repro import ATt2, EarlyDecidingSCS
from repro.analysis.tables import format_table
from repro.lowerbound.serial_runs import (
    enumerate_serial_partial_runs,
    run_with_events,
)

from conftest import emit


def early_decision_census(n, t):
    """Worst global decision round among serial runs with exactly f crashes."""
    rows = []
    for f in range(t + 1):
        worst_es = 0
        worst_scs = 0
        for events in enumerate_serial_partial_runs(n, t, t + 2):
            if len(events) != f:
                continue
            trace = run_with_events(
                ATt2.factory(), list(range(n)), events,
                t=t, horizon=t + 9,
            )
            worst_es = max(worst_es, trace.global_decision_round())
            scs_trace = run_with_events(
                EarlyDecidingSCS, list(range(n)), events,
                t=t, horizon=t + 9,
            )
            worst_scs = max(worst_scs, scs_trace.global_decision_round())
        rows.append(
            (f, worst_es, f + 2, worst_scs, min(f + 2, t + 1))
        )
    return rows


@pytest.mark.parametrize("n,t", [(3, 1), (4, 1)])
def test_early_decision_bounds(benchmark, n, t):
    rows = benchmark.pedantic(
        early_decision_census, args=(n, t), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["f", "A_t+2 worst", "ES bound f+2", "early-SCS worst",
             "SCS bound min(f+2,t+1)"],
            rows,
            title=f"E9: early decision by crash count (n={n}, t={t})",
        )
    )
    for f, worst_es, es_bound, worst_scs, scs_bound in rows:
        # The indulgent algorithm respects (and there exists a run
        # attaining at least) the f + 2 corollary...
        assert worst_es >= es_bound or worst_es == t + 2, (f, worst_es)
        # ... and stays within its own fast-decision ceiling.
        assert worst_es <= t + 2
        # The SCS early decider matches min(f+2, t+1) as an upper bound.
        assert worst_scs <= scs_bound, (f, worst_scs)
