"""Shared helpers for the experiment benches.

Each bench file reproduces one experiment from DESIGN.md's index (E1–E11):
it *asserts* the paper's claim (shape, not absolute numbers) and prints the
reproduced table — run ``pytest benchmarks/ --benchmark-only -s`` to see
the tables alongside pytest-benchmark's timing output.
"""

from __future__ import annotations

import sys


def emit(table: str) -> None:
    """Print an experiment table (flushes so tables interleave sanely)."""
    print("\n" + table, file=sys.stderr, flush=True)
