"""Shared helpers for the experiment benches.

Each bench file reproduces one experiment from DESIGN.md's index (E1–E11):
it *asserts* the paper's claim (shape, not absolute numbers) and prints the
reproduced table — run ``pytest benchmarks/ --benchmark-only -s`` to see
the tables alongside pytest-benchmark's timing output.
"""

from __future__ import annotations

import atexit
import shutil
import sys
import tempfile

_CACHE = None


def shared_cache():
    """The process-wide result cache shared by the comparison benches.

    The E5–E8 grids re-run identical failure-free and structured baselines
    both across pytest-benchmark iterations and across bench files; the
    cache is content-addressed (:mod:`repro.engine.cache`), so each
    distinct (algorithm, schedule, proposals) case pays the kernel exactly
    once per process and every repeat is a disk read.  Consequence: with
    ``--benchmark-only``, iterations after the first time warm-cache reads,
    not kernel execution — use the uncached benches (resilience, ablation,
    lower-bound) to time the engine itself.  The temp directory is fresh
    per process (timings never depend on an earlier invocation) and is
    removed at interpreter exit.
    """
    global _CACHE
    if _CACHE is None:
        from repro.engine import ResultCache

        directory = tempfile.mkdtemp(prefix="repro-bench-cache-")
        atexit.register(shutil.rmtree, directory, ignore_errors=True)
        _CACHE = ResultCache(directory)
    return _CACHE


def bench_executor():
    """The execution backend the comparison benches run on.

    Explicitly the serial backend: the benches time the kernel and the
    engine's bookkeeping, and a pool would fold nondeterministic IPC
    overhead into pytest-benchmark's numbers.  Centralized here so a
    future profiling lane can flip every bench onto another backend at
    once.
    """
    from repro.engine import SerialExecutor

    return SerialExecutor()


def emit(table: str) -> None:
    """Print an experiment table (flushes so tables interleave sanely)."""
    print("\n" + table, file=sys.stderr, flush=True)
