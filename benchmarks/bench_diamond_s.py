"""E6 — Figure 3 / Section 5.1: A_◇S versus the Hurfin–Raynal baseline.

On coordinator-killing synchronous runs, A_◇S reaches a global decision at
round t + 2 for every t, while the Hurfin–Raynal-style algorithm — the
most efficient previously-known indulgent consensus — needs 2t + 2.  The
gap grows linearly in t, as the paper reports.  The head-to-head grid runs
as one engine batch.
"""

import pytest

from repro.analysis.tables import format_table
from repro.detectors import EventuallyStrong, simulate_from_schedule
from repro.engine import cases_from, run_batch
from repro.workloads import coordinator_killer

from conftest import bench_executor, emit, shared_cache

RESILIENCES = [1, 2, 3, 4]


def head_to_head():
    systems = [(2 * t + 1, t) for t in RESILIENCES]
    result = run_batch(cases_from(
        (algorithm, f"killer/t{t}",
         coordinator_killer(n, t, 2 * t + 6, rounds_per_cycle=2), range(n))
        for n, t in systems
        for algorithm in ("adiamond_s", "hurfin_raynal")
    ), executor=bench_executor(), cache=shared_cache())
    rows = []
    for n, t in systems:
        asd = result.find("adiamond_s", f"killer/t{t}")
        hr = result.find("hurfin_raynal", f"killer/t{t}")
        rows.append(
            (n, t, asd.global_round, t + 2, hr.global_round, 2 * t + 2)
        )
    return rows


@pytest.mark.smoke
def test_adiamond_s_vs_hurfin_raynal(benchmark):
    rows = benchmark(head_to_head)
    emit(
        format_table(
            ["n", "t", "A_dS", "paper t+2", "HR", "paper 2t+2"],
            rows,
            title="E6: A_dS vs Hurfin-Raynal on coordinator-killer runs",
        )
    )
    for n, t, asd_round, asd_paper, hr_round, hr_paper in rows:
        del n
        assert asd_round == asd_paper, (t, asd_round)
        assert hr_round == hr_paper, (t, hr_round)


def test_simulated_detector_is_diamond_s(benchmark):
    """The transposition's premise: ES simulates a ◇S-compatible detector."""
    from repro.sim.random_schedules import random_es_schedule

    def check(seeds=range(20)):
        satisfied = 0
        for seed in seeds:
            schedule = random_es_schedule(5, 2, seed, horizon=14, sync_by=6)
            last_crash = max(
                (s.round for s in schedule.crashes.values()), default=0
            )
            if last_crash >= schedule.horizon:
                continue  # completeness unobservable in the window
            history = simulate_from_schedule(schedule)
            assert EventuallyStrong.satisfied_by(history), seed
            satisfied += 1
        return satisfied

    satisfied = benchmark.pedantic(check, rounds=1, iterations=1)
    assert satisfied > 0
