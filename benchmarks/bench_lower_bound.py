"""E1 — Proposition 1: exhaustive verification of the t + 2 lower bound.

For each implemented ES algorithm and each small (n, t), enumerate **every**
serial synchronous run (all crash placements and all crash-round delivery
subsets) and verify:

* some run decides at round >= t + 2 (Proposition 1's statement), and
* for A_{t+2} specifically, *every* run decides at exactly t + 2 (the
  bound is achieved with equality, i.e. it is tight — Lemma 13).
"""

import pytest

from repro import ADiamondS, ATt2, ATt2Optimized, ChandraTouegES, HurfinRaynalES
from repro.analysis.tables import format_table
from repro.lowerbound.serial_runs import worst_case_serial

from conftest import emit

SYSTEMS = [(3, 1), (4, 1)]

ALGORITHMS = [
    ("att2", lambda: ATt2.factory(), lambda t: (t + 2, t + 2)),
    ("att2_optimized", lambda: ATt2Optimized.factory(),
     lambda t: (2, t + 2)),
    ("adiamond_s", lambda: ADiamondS.factory(), lambda t: (t + 2, t + 2)),
    ("hurfin_raynal", lambda: HurfinRaynalES, lambda t: (2, 2 * t + 2)),
    ("chandra_toueg", lambda: ChandraTouegES, lambda t: (3, 3 * t + 3)),
]


def exhaustive_rows(n, t):
    rows = []
    for name, make, bounds in ALGORITHMS:
        worst, worst_events, best, _ = worst_case_serial(
            make(), list(range(n)), t=t,
            crash_rounds_limit=t + 2, horizon=4 * t + 12,
        )
        expected_best, expected_worst = bounds(t)
        rows.append(
            (name, n, t, best, worst, expected_worst,
             len(worst_events))
        )
        assert worst >= t + 2, (name, n, t, worst)
        assert worst == expected_worst, (name, n, t, worst)
        assert best == expected_best, (name, n, t, best)
    return rows


@pytest.mark.parametrize("n,t", SYSTEMS)
def test_lower_bound_exhaustive(benchmark, n, t):
    rows = benchmark.pedantic(
        exhaustive_rows, args=(n, t), rounds=1, iterations=1
    )
    emit(
        format_table(
            ["algorithm", "n", "t", "best", "worst", "paper worst",
             "crashes in witness"],
            rows,
            title=(
                f"E1: exhaustive serial-run decision rounds (n={n}, t={t}) "
                f"— every ES algorithm needs >= t+2"
            ),
        )
    )
