"""E2 — Lemmas 2–5: the bivalency structure, computed exactly.

* Lemma 3 holds for every algorithm: some initial configuration along the
  chain C_0..C_n is bivalent.
* Lemma 2's dichotomy separates the models: FloodSet (decides t + 1 in
  SCS) has **every t-round serial partial run univalent**, while A_{t+2}
  (decides t + 2) has every (t + 1)-round serial partial run univalent —
  each algorithm's last pre-decision round is valency-free, one round
  apart: the lower bound made visible in the valency lattice.
"""

from repro import ATt2, FloodSet
from repro.analysis.tables import format_table
from repro.lowerbound.bivalency import find_bivalent_initial, initial_valencies
from repro.lowerbound.valency import classify_partial_runs

from conftest import emit

N, T = 3, 1


def valency_census():
    results = {}
    # Initial configurations (Lemma 3).
    results["att2_initial"] = initial_valencies(ATt2.factory(), N, T)
    results["floodset_initial"] = initial_valencies(
        FloodSet, N, T, crash_rounds_limit=T + 1
    )
    # Round-t and round-(t+1) partial runs for the two deciders.
    proposals = find_bivalent_initial(ATt2.factory(), N, T)
    results["floodset_t"] = classify_partial_runs(
        FloodSet, proposals, t=T, prefix_rounds=T,
        crash_rounds_limit=T + 1,
    )
    results["att2_t"] = classify_partial_runs(
        ATt2.factory(), proposals, t=T, prefix_rounds=T
    )
    results["att2_t_plus_1"] = classify_partial_runs(
        ATt2.factory(), proposals, t=T, prefix_rounds=T + 1
    )
    return results


def bivalent_count(classified):
    return sum(1 for _events, values in classified if len(values) > 1)


def test_valency_structure(benchmark):
    results = benchmark.pedantic(valency_census, rounds=1, iterations=1)

    att2_initial_bivalent = sum(
        1 for _p, v in results["att2_initial"] if len(v) > 1
    )
    floodset_initial_bivalent = sum(
        1 for _p, v in results["floodset_initial"] if len(v) > 1
    )
    rows = [
        ("A_t+2", "initial configs C_0..C_n",
         len(results["att2_initial"]), att2_initial_bivalent),
        ("FloodSet", "initial configs C_0..C_n",
         len(results["floodset_initial"]), floodset_initial_bivalent),
        ("FloodSet", "t-round serial partial runs",
         len(results["floodset_t"]), bivalent_count(results["floodset_t"])),
        ("A_t+2", "t-round serial partial runs",
         len(results["att2_t"]), bivalent_count(results["att2_t"])),
        ("A_t+2", "(t+1)-round serial partial runs",
         len(results["att2_t_plus_1"]),
         bivalent_count(results["att2_t_plus_1"])),
    ]
    emit(
        format_table(
            ["algorithm", "partial runs", "count", "bivalent"],
            rows,
            title=f"E2: valency census (n={N}, t={T})",
        )
    )

    # Lemma 3: bivalent initial configurations exist for both.
    assert att2_initial_bivalent >= 1
    assert floodset_initial_bivalent >= 1
    # Lemma 2 (per decider): the round before decision is univalent.
    assert bivalent_count(results["floodset_t"]) == 0
    assert bivalent_count(results["att2_t_plus_1"]) == 0
