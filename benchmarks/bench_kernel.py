"""Kernel microbenchmark: compiled schedules vs the reference kernel.

Two claims, both load-bearing for large-n sweeps (docs/performance.md):

* **equivalence** — the compiled kernel (:func:`repro.sim.kernel.execute`)
  produces full traces identical to the original query-at-a-time kernel
  (:func:`repro.sim.kernel.execute_reference`), and the lean trace mode
  produces byte-identical :class:`~repro.analysis.sweep.SweepRecord`\\ s;
* **speed** — at n = 25 the compiled kernel with lean traces beats the
  pre-refactor per-case pipeline (reference kernel + full trace +
  per-case synchrony scan) several times over, because the per-round
  O(n²) schedule method calls and the O(n² · horizon) ``sync_from`` scan
  are compiled away.

The ``kernel-bench`` CI lane runs this file (``--benchmark-disable``) on
every push.  The equivalence assertions are unconditional; the
wall-clock speedup floor (2x, deliberately far below the ≈ 3.8–4.3x
measured on quiet hardware — see docs/performance.md) is asserted only
when ``REPRO_BENCH_ASSERT_SPEEDUP=1``, because a one-shot timing on a
noisy shared runner is a structural flake source for unrelated pushes.
The nightly lane sets the knob; the per-push lane just prints the table.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.algorithms.base import make_automata
from repro.algorithms.registry import get_factory
from repro.analysis.metrics import check_agreement, check_validity
from repro.analysis.sweep import SweepRecord, run_case
from repro.analysis.tables import format_table
from repro.engine.grids import DEFAULT_SWEEP_ALGORITHMS
from repro.model.schedule import Schedule
from repro.sim.kernel import execute, execute_reference
from repro.sim.random_schedules import random_es_schedule

from conftest import emit

#: The microbench systems: the familiar small-n shape and the large-n
#: shape the compiled kernel exists for.
SYSTEMS = ((9, 4), (25, 8))
SEED = 20260730


def _bench_schedules(n: int, t: int):
    """The two bench workloads: the paper's headline failure-free run and
    a seeded random ES schedule (crashes, delays, losses)."""
    horizon = max(12, 3 * t + 6)
    return (
        ("failure_free", Schedule.failure_free(n, t, horizon)),
        ("random_es", random_es_schedule(n, t, SEED, horizon=horizon)),
    )


def _uncached_sync_from(schedule: Schedule) -> int:
    """The pre-refactor synchrony scan, bypassing the sync_from memo."""
    first_bad = 0
    for k in range(1, schedule.horizon + 1):
        if not schedule.is_synchronous_round(k):
            first_bad = k
    return first_bad + 1


def _reference_case(
    algorithm: str, workload: str, schedule: Schedule, proposals
) -> SweepRecord:
    """The pre-refactor per-case pipeline, reproduced faithfully:
    query-at-a-time kernel, full trace, per-case synchrony scan."""
    factory = get_factory(algorithm)
    trace = execute_reference(
        make_automata(factory, schedule.n, schedule.t, proposals), schedule
    )
    return SweepRecord(
        algorithm=algorithm,
        workload=workload,
        n=schedule.n,
        t=schedule.t,
        crashes=len(schedule.crashes),
        sync_from=_uncached_sync_from(schedule),
        global_round=trace.global_decision_round(),
        first_round=trace.first_decision_round(),
        deciders=len(trace.decisions),
        agreement_ok=not check_agreement(trace),
        validity_ok=not check_validity(trace),
        messages=trace.message_count(),
        horizon=schedule.horizon,
        correct_undecided=sum(
            1 for pid in schedule.correct if pid not in trace.decisions
        ),
    )


def _assert_equivalent() -> int:
    """Compiled output must equal reference output, case for case."""
    checked = 0
    for n, t in SYSTEMS:
        proposals = list(range(n))
        for workload, schedule in _bench_schedules(n, t):
            for algorithm in DEFAULT_SWEEP_ALGORITHMS:
                factory = get_factory(algorithm)
                reference = execute_reference(
                    make_automata(factory, n, t, proposals), schedule
                )
                compiled = execute(
                    make_automata(factory, n, t, proposals), schedule,
                    trace="full",
                )
                assert compiled == reference, (
                    f"compiled full trace diverged from the reference "
                    f"kernel: {algorithm} on {workload} (n={n}, t={t})"
                )
                ref_record = _reference_case(
                    algorithm, workload, schedule, proposals
                )
                lean_record, _trace = run_case(
                    algorithm, factory, workload, schedule, proposals,
                    trace_mode="lean",
                )
                assert lean_record == ref_record, (
                    f"lean record diverged from the reference pipeline: "
                    f"{algorithm} on {workload} (n={n}, t={t})"
                )
                checked += 1
    return checked


@pytest.mark.smoke
def test_compiled_kernel_matches_reference(benchmark):
    checked = benchmark.pedantic(_assert_equivalent, rounds=1, iterations=1)
    assert checked == len(SYSTEMS) * 2 * len(DEFAULT_SWEEP_ALGORITHMS)


def _per_case_seconds(arm, schedules, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for workload, schedule in schedules:
            for algorithm in DEFAULT_SWEEP_ALGORITHMS:
                arm(algorithm, workload, schedule)
    cases = repeats * len(schedules) * len(DEFAULT_SWEEP_ALGORITHMS)
    return (time.perf_counter() - start) / cases


def speedup_rows():
    """Measured per-case wall-clock, pre-refactor pipeline vs compiled."""
    rows = []
    for n, t in SYSTEMS:
        proposals = list(range(n))
        schedules = _bench_schedules(n, t)

        def reference_arm(algorithm, workload, schedule):
            _reference_case(algorithm, workload, schedule, proposals)

        def full_arm(algorithm, workload, schedule):
            run_case(algorithm, get_factory(algorithm), workload,
                     schedule, proposals, trace_mode="full")

        def lean_arm(algorithm, workload, schedule):
            run_case(algorithm, get_factory(algorithm), workload,
                     schedule, proposals, trace_mode="lean")

        lean_arm("att2", *schedules[0])  # warm the compile memos once
        repeats = 3 if n < 20 else 2
        ref = _per_case_seconds(reference_arm, schedules, repeats)
        full = _per_case_seconds(full_arm, schedules, repeats)
        lean = _per_case_seconds(lean_arm, schedules, repeats)
        rows.append((
            n, t,
            f"{ref * 1e3:.2f}",
            f"{full * 1e3:.2f}",
            f"{lean * 1e3:.2f}",
            f"{ref / full:.2f}x",
            f"{ref / lean:.2f}x",
        ))
    return rows


@pytest.mark.smoke
def test_compiled_kernel_speedup(benchmark):
    rows = benchmark.pedantic(speedup_rows, rounds=1, iterations=1)
    emit(
        format_table(
            ["n", "t", "reference ms/case", "compiled-full ms/case",
             "compiled-lean ms/case", "full speedup", "lean speedup"],
            rows,
            title="Kernel microbench: per-case cost, pre-refactor vs "
                  "compiled (5 stock algorithms, ff + random ES)",
        )
    )
    # Timing floors only where the operator opted in (nightly lane):
    # a one-shot measurement on a shared runner must not fail pushes.
    # See docs/performance.md for reference numbers on quiet hardware
    # (≈ 3.8–4.3x lean at n = 25; the floor leaves generous headroom).
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        for row in rows:
            n, lean_speedup = row[0], float(row[6].rstrip("x"))
            if n >= 20:
                assert lean_speedup >= 2.0, (
                    f"lean compiled kernel only {lean_speedup:.2f}x "
                    f"faster than the reference pipeline at n={n}"
                )
