"""Kernel microbenchmark: round-view delivery vs the older pipelines.

Two claims, both load-bearing for large-n sweeps (docs/performance.md):

* **equivalence** — the compiled kernel (:func:`repro.sim.kernel.execute`)
  produces full traces identical to the original query-at-a-time kernel
  (:func:`repro.sim.kernel.execute_reference`), and the lean trace mode
  produces byte-identical :class:`~repro.analysis.sweep.SweepRecord`\\ s;
* **speed** — the round-view delivery pipeline (shared pre-bucketed
  inboxes, no per-receiver Message materialization) beats both the
  pre-compile pipeline (*reference* arm: query-at-a-time kernel, full
  trace, per-case synchrony scan) and the PR-4-era flat delivery path
  (*flat* arm: per-receiver flat message tuples re-structured per
  automaton), by a growing factor as n grows.

The *flat* arm reconstructs the previous kernel's delivery contract on
top of today's kernel: every automaton is forced through full Message
materialization plus per-receiver re-derivation of the round structure
— exactly the work the shared :class:`~repro.sim.view.RoundView`
buckets eliminate.  That is also what any unported out-of-tree
automaton pays via the ``deliver_view`` fallback shim.

Besides the printed table, the run persists machine-readable per-system
timings to ``BENCH_kernel.json`` (path override:
``REPRO_BENCH_JSON``); the ``kernel-bench`` CI lane uploads it as an
artifact so the perf trajectory is tracked across pushes.  The XXL
rows (n = 250/500/1000, the bitset data plane at scale) land in the
same file under ``xxl_systems`` — they time the full default sweep set
with a ``per_algorithm_ms`` breakdown (so the trajectory attributes a
future ceiling to its owner, not just to a total), with the flat arm
only where it is affordable.  The ``att2_focus`` rows isolate the
batched Phase-1 plane: both A_{t+2} variants at n = 500, plane engaged
vs opted out.

The ``kernel-bench`` CI lane runs this file (``--benchmark-disable``) on
every push.  The equivalence assertions are unconditional; the
wall-clock speedup floors (2x, deliberately far below the measured
ratios on quiet hardware — see docs/performance.md) are asserted only
when ``REPRO_BENCH_ASSERT_SPEEDUP=1``, because a one-shot timing on a
noisy shared runner is a structural flake source for unrelated pushes.
The nightly lane sets the knob; the per-push lane just prints the table.
"""

from __future__ import annotations

import json
import os
import time
from types import MethodType

import pytest

from repro.algorithms.base import Automaton, make_automata
from repro.algorithms.registry import get_factory
from repro.core.att2 import ATt2
from repro.core.att2_optimized import ATt2Optimized
from repro.analysis.metrics import check_agreement, check_validity
from repro.analysis.sweep import SweepRecord, run_case
from repro.analysis.tables import format_table
from repro.engine.grids import DEFAULT_SWEEP_ALGORITHMS
from repro.model.schedule import Schedule
from repro.sim.kernel import execute, execute_reference
from repro.sim.random_schedules import random_es_schedule
from conftest import emit

#: Systems measured against the full pre-compile *reference* pipeline
#: (it is O(n²·horizon) method calls per case — impractical past n=25).
SYSTEMS = ((9, 4), (25, 8))
#: The large-n rows: view delivery vs the PR-4-era flat delivery path.
LARGE_SYSTEMS = ((50, 16), (100, 32))
#: The n >= 250 milestone rows (bitset data plane): t pinned so the
#: rounds-to-decide stay constant and the rows isolate per-round n²
#: data-plane cost.  The flat arm is affordable only at n = 250.
XXL_SYSTEMS = ((250, 16), (500, 16), (1000, 16))
#: Same-shape baseline row so the XXL flat-speedup trajectory compares
#: like for like (same t, same algorithm set) against n = 100.
XXL_BASELINE = (100, 16)
#: att2 used to be excluded here: its per-receiver ESTIMATE fold did
#: O(n²) *automaton-state* work per round, swamping the delivery plane
#: past n ≈ 100.  The batched Phase-1 plane
#: (:mod:`repro.sim.phase1_plane`) removed that ceiling, so the XXL
#: rows now time the full sweep set — with a per-algorithm breakdown
#: so any future ceiling names its owner.
XXL_ALGORITHMS = DEFAULT_SWEEP_ALGORITHMS
#: The att2-focused row (n, t): plane-engaged vs plane-opted-out
#: per-case cost for both A_{t+2} variants, cheap enough for the
#: per-push kernel-bench lane.
ATT2_FOCUS_SYSTEM = (500, 16)
ATT2_FOCUS_ALGORITHMS = ("att2", "att2_optimized")
SEED = 20260730

#: Where the machine-readable timings land (the CI lane uploads this).
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_kernel.json")


def _bench_schedules(n: int, t: int):
    """The two bench workloads: the paper's headline failure-free run and
    a seeded random ES schedule (crashes, delays, losses)."""
    horizon = max(12, 3 * t + 6)
    return (
        ("failure_free", Schedule.failure_free(n, t, horizon)),
        ("random_es", random_es_schedule(n, t, SEED, horizon=horizon)),
    )


def _uncached_sync_from(schedule: Schedule) -> int:
    """The pre-refactor synchrony scan, bypassing the sync_from memo."""
    first_bad = 0
    for k in range(1, schedule.horizon + 1):
        if not schedule.is_synchronous_round(k):
            first_bad = k
    return first_bad + 1


def _reference_case(
    algorithm: str, workload: str, schedule: Schedule, proposals
) -> SweepRecord:
    """The pre-compile per-case pipeline, reproduced faithfully:
    query-at-a-time kernel, full trace, per-case synchrony scan."""
    factory = get_factory(algorithm)
    trace = execute_reference(
        make_automata(factory, schedule.n, schedule.t, proposals), schedule
    )
    return SweepRecord(
        algorithm=algorithm,
        workload=workload,
        n=schedule.n,
        t=schedule.t,
        crashes=len(schedule.crashes),
        sync_from=_uncached_sync_from(schedule),
        global_round=trace.global_decision_round(),
        first_round=trace.first_decision_round(),
        deciders=len(trace.decisions),
        agreement_ok=not check_agreement(trace),
        validity_ok=not check_validity(trace),
        messages=trace.message_count(),
        horizon=schedule.horizon,
        correct_undecided=sum(
            1 for pid in schedule.correct if pid not in trace.decisions
        ),
    )


def _flat_factory(factory):
    """Wrap *factory* so its automata take the flat delivery path.

    Forcing the base-class shim (``Automaton.deliver_view``) onto each
    instance reconstructs the PR-4 delivery contract exactly: the flat
    message tuple is materialized and the round structure re-derived
    per receiver — the work every automaton's filtering boilerplate
    used to do each round, and what any unported out-of-tree automaton
    still pays.
    """

    def build(pid, n, t, proposal):
        automaton = factory(pid, n, t, proposal)
        automaton.deliver_view = MethodType(
            Automaton.deliver_view, automaton
        )
        return automaton

    return build


class _NoPlaneATt2(ATt2):
    """Stock A_{t+2} minus the batched Phase-1 plane opt-in."""

    phase1_plane_protocol = None


class _NoPlaneATt2Optimized(ATt2Optimized):
    phase1_plane_protocol = None


_PLANE_OPT_OUTS = {
    "att2": _NoPlaneATt2,
    "att2_optimized": _NoPlaneATt2Optimized,
}


def _plane_opt_out_factory(algorithm: str):
    """A factory whose automata opt out of the batched Phase-1 plane.

    Clearing the class-level protocol declaration keeps every other
    optimization (lazy round-view buckets, single-pass folds) in place,
    so plane-vs-opt-out ratios attribute exactly the plane's batching —
    not the rest of the view pipeline.
    """
    return _PLANE_OPT_OUTS[algorithm].factory()


def _assert_equivalent() -> int:
    """Compiled output must equal reference output, case for case."""
    checked = 0
    for n, t in SYSTEMS:
        proposals = list(range(n))
        for workload, schedule in _bench_schedules(n, t):
            for algorithm in DEFAULT_SWEEP_ALGORITHMS:
                factory = get_factory(algorithm)
                reference = execute_reference(
                    make_automata(factory, n, t, proposals), schedule
                )
                compiled = execute(
                    make_automata(factory, n, t, proposals), schedule,
                    trace="full",
                )
                assert compiled == reference, (
                    f"compiled full trace diverged from the reference "
                    f"kernel: {algorithm} on {workload} (n={n}, t={t})"
                )
                ref_record = _reference_case(
                    algorithm, workload, schedule, proposals
                )
                lean_record, _trace = run_case(
                    algorithm, factory, workload, schedule, proposals,
                    trace_mode="lean",
                )
                assert lean_record == ref_record, (
                    f"lean record diverged from the reference pipeline: "
                    f"{algorithm} on {workload} (n={n}, t={t})"
                )
                flat_record, _trace = run_case(
                    algorithm, _flat_factory(factory), workload, schedule,
                    proposals, trace_mode="lean",
                )
                assert flat_record == ref_record, (
                    f"flat-delivery record diverged from the reference "
                    f"pipeline: {algorithm} on {workload} (n={n}, t={t})"
                )
                checked += 1
    return checked


@pytest.mark.smoke
def test_compiled_kernel_matches_reference(benchmark):
    checked = benchmark.pedantic(_assert_equivalent, rounds=1, iterations=1)
    assert checked == len(SYSTEMS) * 2 * len(DEFAULT_SWEEP_ALGORITHMS)


def _per_case_seconds(
    arm, schedules, repeats: int,
    algorithms: tuple = DEFAULT_SWEEP_ALGORITHMS,
) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for workload, schedule in schedules:
            for algorithm in algorithms:
                arm(algorithm, workload, schedule)
    cases = repeats * len(schedules) * len(algorithms)
    return (time.perf_counter() - start) / cases


def speedup_measurements() -> list[dict]:
    """Measured per-case wall-clock for every arm, per system.

    The reference arm is measured only where it is affordable
    (``SYSTEMS``); the large-n rows compare the view pipeline against
    the flat-delivery arm, which *is* the PR-4 kernel's per-case cost
    model.  Compile memos are warmed before timing — in a sweep the
    plan is compiled once per schedule and shared by every algorithm.
    """
    measurements = []
    for n, t in SYSTEMS + LARGE_SYSTEMS:
        proposals = list(range(n))
        schedules = _bench_schedules(n, t)

        def reference_arm(algorithm, workload, schedule):
            _reference_case(algorithm, workload, schedule, proposals)

        def flat_arm(algorithm, workload, schedule):
            run_case(algorithm, _flat_factory(get_factory(algorithm)),
                     workload, schedule, proposals, trace_mode="lean")

        def full_arm(algorithm, workload, schedule):
            run_case(algorithm, get_factory(algorithm), workload,
                     schedule, proposals, trace_mode="full")

        def lean_arm(algorithm, workload, schedule):
            run_case(algorithm, get_factory(algorithm), workload,
                     schedule, proposals, trace_mode="lean")

        for workload, schedule in schedules:  # warm the compile memos
            lean_arm("att2", workload, schedule)
        repeats = 3 if n < 20 else (2 if n < 80 else 1)
        with_reference = (n, t) in SYSTEMS
        reference = (
            _per_case_seconds(reference_arm, schedules, repeats)
            if with_reference else None
        )
        flat = _per_case_seconds(flat_arm, schedules, repeats)
        full = _per_case_seconds(full_arm, schedules, repeats)
        lean = _per_case_seconds(lean_arm, schedules, repeats)
        measurements.append({
            "n": n,
            "t": t,
            "reference_ms": (
                round(reference * 1e3, 3) if reference is not None else None
            ),
            "flat_ms": round(flat * 1e3, 3),
            "full_ms": round(full * 1e3, 3),
            "lean_ms": round(lean * 1e3, 3),
            "reference_speedup": (
                round(reference / lean, 2) if reference is not None else None
            ),
            "flat_speedup": round(flat / lean, 2),
        })
    return measurements


def _persist_json(measurements: list[dict]) -> None:
    data = {
        "version": 1,
        "seed": SEED,
        "algorithms": list(DEFAULT_SWEEP_ALGORITHMS),
        "workloads": ["failure_free", "random_es"],
        "units": "ms_per_case",
        "systems": measurements,
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.smoke
def test_compiled_kernel_speedup(benchmark):
    measurements = benchmark.pedantic(
        speedup_measurements, rounds=1, iterations=1
    )
    _persist_json(measurements)

    def fmt(value, suffix=""):
        return "-" if value is None else f"{value:.2f}{suffix}"

    rows = [
        (
            m["n"], m["t"],
            fmt(m["reference_ms"]), fmt(m["flat_ms"]),
            fmt(m["full_ms"]), fmt(m["lean_ms"]),
            fmt(m["reference_speedup"], "x"), fmt(m["flat_speedup"], "x"),
        )
        for m in measurements
    ]
    emit(
        format_table(
            ["n", "t", "reference ms/case", "flat ms/case",
             "view-full ms/case", "view-lean ms/case",
             "vs reference", "vs flat"],
            rows,
            title="Kernel microbench: per-case cost — pre-compile "
                  "reference, flat delivery, round-view delivery "
                  "(5 stock algorithms, ff + random ES)",
        )
    )
    emit(f"\nwrote per-system timings to {BENCH_JSON}")
    # Timing floors only where the operator opted in (nightly lane):
    # a one-shot measurement on a shared runner must not fail pushes.
    # See docs/performance.md for reference numbers on quiet hardware
    # (≈ 13x vs the reference pipeline at n = 25; ≈ 3.9–4.3x vs flat
    # delivery at n ≥ 25 — the floors leave generous headroom).
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        for m in measurements:
            if m["n"] >= 20 and m["reference_speedup"] is not None:
                assert m["reference_speedup"] >= 2.0, (
                    f"view-lean kernel only {m['reference_speedup']:.2f}x "
                    f"faster than the reference pipeline at n={m['n']}"
                )
            if m["n"] >= 50:
                assert m["flat_speedup"] >= 2.0, (
                    f"view-lean kernel only {m['flat_speedup']:.2f}x "
                    f"faster than flat delivery at n={m['n']}"
                )


def xxl_measurements() -> list[dict]:
    """The n >= 250 rows: per-case cost of the bitset data plane at scale.

    Measures the full sweep set (:data:`XXL_ALGORITHMS`) lean per-case
    cost at every XXL size — one timing per algorithm, so the
    ``per_algorithm_ms`` breakdown attributes each row's cost — plus
    the flat-delivery arm where it is affordable (the baseline and
    n = 250) so the flat-speedup trajectory across n stays comparable
    (same t, same algorithms, same workloads as the
    :data:`XXL_BASELINE` row).  An att2 arm with the batched Phase-1
    plane opted out isolates the plane's contribution per row.
    """
    measurements = []
    for n, t in (XXL_BASELINE,) + XXL_SYSTEMS:
        proposals = list(range(n))
        schedules = _bench_schedules(n, t)

        def flat_arm(algorithm, workload, schedule):
            run_case(algorithm, _flat_factory(get_factory(algorithm)),
                     workload, schedule, proposals, trace_mode="lean")

        def lean_arm(algorithm, workload, schedule):
            run_case(algorithm, get_factory(algorithm), workload,
                     schedule, proposals, trace_mode="lean")

        def noplane_arm(algorithm, workload, schedule):
            run_case(algorithm, _plane_opt_out_factory(algorithm),
                     workload, schedule, proposals, trace_mode="lean")

        for workload, schedule in schedules:  # warm the compile memos
            lean_arm("chandra_toueg", workload, schedule)
        with_flat = n <= max(XXL_BASELINE[0], 250)
        per_algorithm = {
            algorithm: round(
                _per_case_seconds(lean_arm, schedules, 1, (algorithm,))
                * 1e3,
                3,
            )
            for algorithm in XXL_ALGORITHMS
        }
        lean = sum(per_algorithm.values()) / len(per_algorithm) / 1e3
        flat = (
            _per_case_seconds(flat_arm, schedules, 1, XXL_ALGORITHMS)
            if with_flat else None
        )
        noplane = _per_case_seconds(noplane_arm, schedules, 1, ("att2",))
        measurements.append({
            "n": n,
            "t": t,
            "algorithms": list(XXL_ALGORITHMS),
            "flat_ms": round(flat * 1e3, 3) if flat is not None else None,
            "lean_ms": round(lean * 1e3, 3),
            "per_algorithm_ms": per_algorithm,
            "att2_noplane_ms": round(noplane * 1e3, 3),
            "plane_speedup": round(
                noplane * 1e3 / per_algorithm["att2"], 2
            ),
            "flat_speedup": (
                round(flat / lean, 2) if flat is not None else None
            ),
        })
    return measurements


def _merge_rows(key: str, rows: list[dict]) -> None:
    """Merge *rows* into ``BENCH_kernel.json`` under *key* (additive).

    The speedup test writes the base document first in a full run; a
    partial run (test selection) still produces a valid file.
    """
    try:
        with open(BENCH_JSON, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        data = {"version": 1, "seed": SEED, "units": "ms_per_case"}
    data[key] = rows
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


# Deliberately NOT smoke-marked: ~5 min of XXL measurement belongs in
# the kernel-bench and nightly lanes (whole-file runs), not the fast
# smoke subset.
def test_kernel_xxl_scaling(benchmark):
    measurements = benchmark.pedantic(
        xxl_measurements, rounds=1, iterations=1
    )
    _merge_rows("xxl_systems", measurements)

    def fmt(value, suffix=""):
        return "-" if value is None else f"{value:.2f}{suffix}"

    rows = [
        (m["n"], m["t"], fmt(m["flat_ms"]), fmt(m["lean_ms"]),
         fmt(m["per_algorithm_ms"]["att2"]), fmt(m["att2_noplane_ms"]),
         fmt(m["plane_speedup"], "x"), fmt(m["flat_speedup"], "x"))
        for m in measurements
    ]
    emit(
        format_table(
            ["n", "t", "flat ms/case", "view-lean ms/case",
             "att2 ms/case", "att2 no-plane", "plane", "vs flat"],
            rows,
            title="Kernel XXL scaling: per-case cost, full sweep set "
                  "(bitset data plane; flat arm where affordable; "
                  "att2 plane attribution)",
        )
    )
    emit(f"\nmerged XXL rows into {BENCH_JSON}")
    # Same opt-in as the other floors: one-shot timings on a shared
    # runner must not fail pushes.  The n = 250 flat speedup must hold
    # the n = 100 baseline's ratio — the data plane's advantage grows
    # with n, so a drop below the like-for-like baseline means the
    # bitset plane regressed — plus the usual generous hard floor.
    # The plane floors guard the batched Phase-1 fold the same way.
    # Its advantage grows with n (the per-receiver fold it replaces is
    # O(n) per receiver): ~1.7-2.4x measured at n = 250, ~3-7x at
    # n = 500, ~4-5x at n = 1000.  So n = 250 gets a
    # guard-against-pessimization
    # floor and n >= 500 the usual generous 2x.
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        by_n = {m["n"]: m for m in measurements}
        baseline = by_n[XXL_BASELINE[0]]["flat_speedup"]
        at_250 = by_n[250]["flat_speedup"]
        assert at_250 >= 2.0, (
            f"view-lean kernel only {at_250:.2f}x faster than flat "
            f"delivery at n=250"
        )
        assert at_250 >= baseline, (
            f"flat-delivery speedup shrank with n: {at_250:.2f}x at "
            f"n=250 vs {baseline:.2f}x at the n={XXL_BASELINE[0]} "
            f"baseline"
        )
        for m in measurements:
            if m["n"] >= 250:
                floor = 2.0 if m["n"] >= 500 else 1.2
                assert m["plane_speedup"] >= floor, (
                    f"batched Phase-1 plane only "
                    f"{m['plane_speedup']:.2f}x faster than the "
                    f"opted-out fold at n={m['n']} (floor {floor}x)"
                )


def att2_focus_measurements() -> list[dict]:
    """Plane-attribution rows at the :data:`ATT2_FOCUS_SYSTEM` size.

    Times only the two A_{t+2} variants at n = 500 — the batched
    Phase-1 plane engaged (stock factories) vs opted out (class-level
    protocol cleared, everything else identical).  A few seconds of
    work, so the per-push kernel-bench lane runs it under an explicit
    timeout and a plane regression surfaces long before the nightly
    XXL floors see it.
    """
    n, t = ATT2_FOCUS_SYSTEM
    proposals = list(range(n))
    schedules = _bench_schedules(n, t)

    def lean_arm(algorithm, workload, schedule):
        run_case(algorithm, get_factory(algorithm), workload,
                 schedule, proposals, trace_mode="lean")

    def noplane_arm(algorithm, workload, schedule):
        run_case(algorithm, _plane_opt_out_factory(algorithm),
                 workload, schedule, proposals, trace_mode="lean")

    for workload, schedule in schedules:  # warm the compile memos
        lean_arm("att2", workload, schedule)
    rows = []
    for algorithm in ATT2_FOCUS_ALGORITHMS:
        plane = _per_case_seconds(lean_arm, schedules, 1, (algorithm,))
        noplane = _per_case_seconds(
            noplane_arm, schedules, 1, (algorithm,)
        )
        rows.append({
            "algorithm": algorithm,
            "n": n,
            "t": t,
            "plane_ms": round(plane * 1e3, 3),
            "noplane_ms": round(noplane * 1e3, 3),
            "plane_speedup": round(noplane / plane, 2),
        })
    return rows


# Not smoke-marked: a handful of n = 500 cases is too heavy for the
# smoke subset, but cheap enough that the kernel-bench lane gives it
# its own timeout-bounded step (see .github/workflows/ci.yml).
def test_kernel_att2_focus(benchmark):
    rows = benchmark.pedantic(
        att2_focus_measurements, rounds=1, iterations=1
    )
    _merge_rows("att2_focus", rows)
    table_rows = [
        (r["algorithm"], r["n"], r["t"], f"{r['plane_ms']:.2f}",
         f"{r['noplane_ms']:.2f}", f"{r['plane_speedup']:.2f}x")
        for r in rows
    ]
    emit(
        format_table(
            ["algorithm", "n", "t", "plane ms/case",
             "no-plane ms/case", "plane speedup"],
            table_rows,
            title="att2 focus: batched Phase-1 plane vs opted-out fold "
                  "(lean trace, ff + random ES)",
        )
    )
    emit(f"\nmerged att2 focus rows into {BENCH_JSON}")
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        for r in rows:
            assert r["plane_speedup"] >= 2.0, (
                f"batched Phase-1 plane only {r['plane_speedup']:.2f}x "
                f"faster than the opted-out fold for {r['algorithm']} "
                f"at n={r['n']}"
            )
