"""E7 — Figure 4 / Section 5.2: the failure-free optimization.

In every failure-free synchronous run, the optimized A_{t+2} reaches a
global decision at round 2 — matching the two-round lower bound for
well-behaved runs (Keidar & Rajsbaum) — while remaining t + 2 when
failures or suspicions appear.

Both the per-system comparison grid and the randomized serial-run safety
sample execute as engine batches; the safety sample draws its schedules
from the seeded ``random_serial`` family.
"""

import pytest

from repro import Schedule
from repro.analysis.tables import format_table
from repro.engine import cases_from, family, run_batch
from repro.engine.grids import expand_family
from repro.workloads import serial_cascade

from conftest import bench_executor, emit, shared_cache

SYSTEMS = [(3, 1), (5, 2), (7, 3), (9, 4)]


def optimization_rows():
    def entries():
        for n, t in SYSTEMS:
            ff = Schedule.failure_free(n, t, t + 6)
            crashy = serial_cascade(n, t, t + 6)
            yield ("att2", f"ff/n{n}", ff, range(n))
            yield ("att2_optimized", f"ff/n{n}", ff, range(n))
            yield ("att2_optimized", f"cascade/n{n}", crashy, range(n))

    result = run_batch(cases_from(entries()), executor=bench_executor(),
                       cache=shared_cache())
    rows = []
    for n, t in SYSTEMS:
        rows.append(
            (
                n,
                t,
                result.find("att2", f"ff/n{n}").global_round,
                result.find("att2_optimized", f"ff/n{n}").global_round,
                result.find("att2_optimized", f"cascade/n{n}").global_round,
            )
        )
    return rows


@pytest.mark.smoke
def test_failure_free_optimization(benchmark):
    rows = benchmark(optimization_rows)
    emit(
        format_table(
            ["n", "t", "plain A_t+2 (ff)", "optimized (ff)",
             "optimized (cascade)"],
            rows,
            title="E7: Figure-4 optimization — round 2 in failure-free runs",
        )
    )
    for n, t, plain_ff, opt_ff, opt_crashy in rows:
        del n
        assert plain_ff == t + 2
        assert opt_ff == 2  # the well-behaved lower bound, met exactly
        assert opt_crashy == t + 2  # degradation is graceful


def test_optimization_never_violates_safety(benchmark):
    """Sampled serial runs: the fast path must never break agreement."""

    def sampled(samples=150):
        instances = expand_family(
            family("serial", "random_serial", count=samples, horizon=10),
            5, 2, master_seed=0,
        )
        result = run_batch(cases_from(
            ("att2_optimized", label, schedule, (3, 1, 4, 1, 5))
            for label, schedule in instances
        ), executor=bench_executor())
        return [
            record.workload
            for record in result.records
            if not (record.agreement_ok and record.validity_ok)
            or record.correct_undecided
        ]

    bad = benchmark.pedantic(sampled, rounds=1, iterations=1)
    assert not bad
