"""E7 — Figure 4 / Section 5.2: the failure-free optimization.

In every failure-free synchronous run, the optimized A_{t+2} reaches a
global decision at round 2 — matching the two-round lower bound for
well-behaved runs (Keidar & Rajsbaum) — while remaining t + 2 when
failures or suspicions appear.
"""

from repro import ATt2, ATt2Optimized, Schedule
from repro.analysis.sweep import run_case
from repro.analysis.tables import format_table
from repro.workloads import serial_cascade

from conftest import emit

SYSTEMS = [(3, 1), (5, 2), (7, 3), (9, 4)]


def optimization_rows():
    rows = []
    for n, t in SYSTEMS:
        ff = Schedule.failure_free(n, t, t + 6)
        crashy = serial_cascade(n, t, t + 6)
        plain_ff, _ = run_case(
            "att2", ATt2.factory(), "ff", ff, list(range(n))
        )
        opt_ff, _ = run_case(
            "att2_opt", ATt2Optimized.factory(), "ff", ff, list(range(n))
        )
        opt_crashy, _ = run_case(
            "att2_opt", ATt2Optimized.factory(), "cascade", crashy,
            list(range(n)),
        )
        rows.append(
            (
                n,
                t,
                plain_ff.global_round,
                opt_ff.global_round,
                opt_crashy.global_round,
            )
        )
    return rows


def test_failure_free_optimization(benchmark):
    rows = benchmark(optimization_rows)
    emit(
        format_table(
            ["n", "t", "plain A_t+2 (ff)", "optimized (ff)",
             "optimized (cascade)"],
            rows,
            title="E7: Figure-4 optimization — round 2 in failure-free runs",
        )
    )
    for n, t, plain_ff, opt_ff, opt_crashy in rows:
        del n
        assert plain_ff == t + 2
        assert opt_ff == 2  # the well-behaved lower bound, met exactly
        assert opt_crashy == t + 2  # degradation is graceful


def test_optimization_never_violates_safety(benchmark):
    """Sampled serial runs: the fast path must never break agreement."""
    from repro.analysis.metrics import check_consensus
    from repro.sim.kernel import run_algorithm
    from repro.sim.random_schedules import random_serial_schedule

    def sampled(seeds=range(150)):
        bad = []
        for seed in seeds:
            schedule = random_serial_schedule(5, 2, seed, horizon=10)
            trace = run_algorithm(
                ATt2Optimized.factory(), schedule, [3, 1, 4, 1, 5]
            )
            if check_consensus(trace):
                bad.append(seed)
        return bad

    bad = benchmark.pedantic(sampled, rounds=1, iterations=1)
    assert not bad
