"""E8 — Figure 5 / Lemmas 15–16: eventual fast decision, A_{f+2} vs AMR.

Sweeps the asynchrony prefix k and the post-synchrony crash count f on
identical schedules: A_{f+2} globally decides by round k + f + 2 (Lemma
15); the two-step leader-based AMR needs up to k + 2f + 2 (footnote 10).
Absolute rounds depend on the workload's kindness — the asserted shape is
the paper's *guarantee* (upper bounds) plus the A_{f+2} <= AMR ordering.
"""

from repro import AFPlus2, AMRLeaderES
from repro.analysis.sweep import run_case
from repro.analysis.tables import format_table
from repro.workloads import async_prefix

from conftest import emit

N, T = 7, 2


def eventual_fast_rows():
    rows = []
    for k in (0, 2, 4):
        for f in (0, 1, 2):
            schedule = async_prefix(N, T, k + f + 10, k=k, crashes_after=f)
            afp2, _ = run_case(
                "afp2", AFPlus2, f"k{k}f{f}", schedule, list(range(N))
            )
            amr, _ = run_case(
                "amr", AMRLeaderES, f"k{k}f{f}", schedule, list(range(N))
            )
            rows.append(
                (
                    k,
                    f,
                    afp2.global_round,
                    k + f + 2,
                    amr.global_round,
                    k + 2 * f + 2,
                )
            )
    return rows


def test_eventual_fast_decision(benchmark):
    rows = benchmark(eventual_fast_rows)
    emit(
        format_table(
            ["k", "f", "A_f+2", "bound k+f+2", "AMR", "bound k+2f+2"],
            rows,
            title=f"E8: eventual fast decision (n={N}, t={T})",
        )
    )
    for k, f, afp2_round, afp2_bound, amr_round, amr_bound in rows:
        assert afp2_round is not None and afp2_round <= afp2_bound, (k, f)
        assert amr_round is not None and amr_round <= amr_bound, (k, f)
        assert afp2_round <= amr_round, (k, f)


def test_crash_heavy_synchronous_tail(benchmark):
    """f = t crashes right after the prefix: the bound still holds."""

    def run():
        rows = []
        for k in (0, 3):
            schedule = async_prefix(N, T, k + T + 10, k=k, crashes_after=T)
            afp2, _ = run_case(
                "afp2", AFPlus2, f"k{k}", schedule, list(range(N))
            )
            rows.append((k, T, afp2.global_round, k + T + 2))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, f, got, bound in rows:
        del f
        assert got is not None and got <= bound, (k, got, bound)


def test_termination_from_any_prefix(benchmark):
    """Lemma 16: every run decides once synchrony arrives (k + t + 2)."""
    from repro.analysis.metrics import check_consensus
    from repro.sim.kernel import run_algorithm
    from repro.sim.random_schedules import random_es_schedule, random_proposals

    def sampled(seeds=range(60)):
        bad = []
        for seed in seeds:
            schedule = random_es_schedule(N, T, seed, horizon=22, sync_by=8)
            trace = run_algorithm(
                AFPlus2, schedule, random_proposals(N, seed)
            )
            if check_consensus(trace, expect_termination=True):
                bad.append(seed)
        return bad

    bad = benchmark.pedantic(sampled, rounds=1, iterations=1)
    assert not bad
