"""E8 — Figure 5 / Lemmas 15–16: eventual fast decision, A_{f+2} vs AMR.

Sweeps the asynchrony prefix k and the post-synchrony crash count f on
identical schedules: A_{f+2} globally decides by round k + f + 2 (Lemma
15); the two-step leader-based AMR needs up to k + 2f + 2 (footnote 10).
Absolute rounds depend on the workload's kindness — the asserted shape is
the paper's *guarantee* (upper bounds) plus the A_{f+2} <= AMR ordering.

The (k, f) × algorithm sweep and the Lemma-16 randomized termination
check both execute as engine batches; the latter draws its schedule
family from the seeded grid layer.
"""

import pytest

from repro.analysis.tables import format_table
from repro.engine import cases_from, family, run_batch
from repro.engine.grids import expand_family
from repro.sim.random_schedules import random_proposals
from repro.workloads import async_prefix

from conftest import bench_executor, emit, shared_cache

N, T = 7, 2
POINTS = [(k, f) for k in (0, 2, 4) for f in (0, 1, 2)]


def eventual_fast_rows():
    result = run_batch(cases_from(
        (algorithm, f"k{k}f{f}",
         async_prefix(N, T, k + f + 10, k=k, crashes_after=f), range(N))
        for k, f in POINTS
        for algorithm in ("afp2", "amr_leader")
    ), executor=bench_executor(), cache=shared_cache())
    rows = []
    for k, f in POINTS:
        afp2 = result.find("afp2", f"k{k}f{f}")
        amr = result.find("amr_leader", f"k{k}f{f}")
        rows.append(
            (
                k,
                f,
                afp2.global_round,
                k + f + 2,
                amr.global_round,
                k + 2 * f + 2,
            )
        )
    return rows


@pytest.mark.smoke
def test_eventual_fast_decision(benchmark):
    rows = benchmark(eventual_fast_rows)
    emit(
        format_table(
            ["k", "f", "A_f+2", "bound k+f+2", "AMR", "bound k+2f+2"],
            rows,
            title=f"E8: eventual fast decision (n={N}, t={T})",
        )
    )
    for k, f, afp2_round, afp2_bound, amr_round, amr_bound in rows:
        assert afp2_round is not None and afp2_round <= afp2_bound, (k, f)
        assert amr_round is not None and amr_round <= amr_bound, (k, f)
        assert afp2_round <= amr_round, (k, f)


def test_crash_heavy_synchronous_tail(benchmark):
    """f = t crashes right after the prefix: the bound still holds."""

    def run():
        result = run_batch(cases_from(
            ("afp2", f"k{k}",
             async_prefix(N, T, k + T + 10, k=k, crashes_after=T), range(N))
            for k in (0, 3)
        ), executor=bench_executor())
        return [
            (k, T, result.find("afp2", f"k{k}").global_round, k + T + 2)
            for k in (0, 3)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, f, got, bound in rows:
        del f
        assert got is not None and got <= bound, (k, got, bound)


def test_termination_from_any_prefix(benchmark):
    """Lemma 16: every run decides once synchrony arrives (k + t + 2)."""

    def sampled(samples=60):
        instances = expand_family(
            family("es", "random_es", count=samples, horizon=22, sync_by=8),
            N, T, master_seed=0,
        )
        result = run_batch(cases_from(
            ("afp2", label, schedule, random_proposals(N, i))
            for i, (label, schedule) in enumerate(instances)
        ), executor=bench_executor())
        return [
            record.workload
            for record in result.records
            if not (record.agreement_ok and record.validity_ok)
            or record.correct_undecided
        ]

    bad = benchmark.pedantic(sampled, rounds=1, iterations=1)
    assert not bad
