"""E11 — Section 4: ES simulates ◇P (and hence ◇S).

On families of generated schedules, the simulated detector (suspect =
"no current-round message") satisfies:

* on SCS-legal synchronous runs — the *perfect* detector P (this is why
  Halt sets in synchronous runs only ever contain crashed processes,
  Claim 13.1);
* on ES-legal runs — ◇P: strong completeness plus eventual strong
  accuracy, with the accuracy round no later than the schedule's synchrony
  round once crashes have settled.
"""

from repro.analysis.tables import format_table
from repro.detectors import (
    EventuallyPerfect,
    EventuallyStrong,
    Perfect,
    simulate_from_schedule,
)
from repro.sim.random_schedules import random_es_schedule, random_scs_schedule

from conftest import emit

SAMPLES = 60


def detector_census():
    stats = {
        "scs_perfect": 0,
        "scs_total": 0,
        "es_diamond_p": 0,
        "es_diamond_s": 0,
        "es_accuracy_by_sync": 0,
        "es_total": 0,
    }
    for seed in range(SAMPLES):
        scs = random_scs_schedule(6, 2, seed, horizon=9)
        last_crash = max(
            (s.round for s in scs.crashes.values()), default=0
        )
        if last_crash < scs.horizon:
            stats["scs_total"] += 1
            if Perfect.satisfied_by(simulate_from_schedule(scs)):
                stats["scs_perfect"] += 1

        es = random_es_schedule(6, 2, seed, horizon=16, sync_by=7)
        last_crash = max(
            (s.round for s in es.crashes.values()), default=0
        )
        if last_crash >= es.horizon:
            continue
        stats["es_total"] += 1
        history = simulate_from_schedule(es)
        if EventuallyPerfect.satisfied_by(history):
            stats["es_diamond_p"] += 1
        if EventuallyStrong.satisfied_by(history):
            stats["es_diamond_s"] += 1
        accuracy_round = history.eventual_strong_accuracy_round()
        settle = max(es.sync_from(), last_crash + 1)
        if accuracy_round is not None and accuracy_round <= settle:
            stats["es_accuracy_by_sync"] += 1
    return stats


def test_simulated_detector_properties(benchmark):
    stats = benchmark.pedantic(detector_census, rounds=1, iterations=1)
    rows = [
        ("SCS runs satisfying P", stats["scs_perfect"],
         stats["scs_total"]),
        ("ES runs satisfying ◇P", stats["es_diamond_p"],
         stats["es_total"]),
        ("ES runs satisfying ◇S", stats["es_diamond_s"],
         stats["es_total"]),
        ("ES accuracy by settle round", stats["es_accuracy_by_sync"],
         stats["es_total"]),
    ]
    emit(
        format_table(
            ["property", "satisfied", "checked"],
            rows,
            title="E11: the Section-4 failure-detector simulation",
        )
    )
    assert stats["scs_perfect"] == stats["scs_total"] > 0
    assert stats["es_diamond_p"] == stats["es_total"] > 0
    assert stats["es_diamond_s"] == stats["es_total"]
    assert stats["es_accuracy_by_sync"] == stats["es_total"]
