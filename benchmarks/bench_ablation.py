"""Ablations of A_{t+2} design choices (DESIGN.md §5).

1. **DECIDE relay**: adopters re-broadcast the decision once before
   halting.  Under a delayed original announcement, relaying saves rounds
   for late receivers; without it they wait for the crawling original (or
   their own fallback consensus).  Safety is unaffected either way.
2. **Underlying consensus plug-in**: the fallback latency after an
   asynchronous Phase 1 depends on C (Hurfin–Raynal-style C is one cycle
   shorter than Chandra–Toueg-style C), while the synchronous fast path
   is identical — the paper's point that fast decision is independent
   of C.
"""

from repro import ATt2, ChandraTouegES, HurfinRaynalES
from repro.analysis.tables import format_table
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm

from conftest import emit


class ATt2NoRelay(ATt2):
    relay_decision = False


def delayed_announcement_schedule(horizon=16):
    builder = ScheduleBuilder(3, 1, horizon)
    for k in (1, 2):
        builder.delay(0, 1, k, 3)
        builder.delay(0, 2, k, 3)
    builder.delay(0, 1, 3, 5)
    builder.delay(1, 2, 4, 14)
    return builder.build()


def relay_ablation():
    schedule = delayed_announcement_schedule()
    with_relay = run_algorithm(ATt2.factory(), schedule, [0, 1, 1])

    def no_relay_factory(pid, n, t, proposal):
        return ATt2NoRelay(pid, n, t, proposal)

    without = run_algorithm(no_relay_factory, schedule, [0, 1, 1])
    return with_relay, without


def test_decide_relay_ablation(benchmark):
    with_relay, without = benchmark(relay_ablation)
    rows = [
        ("relay on", with_relay.decision_round(2),
         with_relay.global_decision_round()),
        ("relay off", without.decision_round(2),
         without.global_decision_round()),
    ]
    emit(
        format_table(
            ["variant", "p2 decision round", "global round"],
            rows,
            title="Ablation: DECIDE relay under a delayed announcement",
        )
    )
    assert with_relay.decision_round(2) < without.decision_round(2)
    assert with_relay.decided_values() == without.decided_values()


def fallback_latency():
    """Asynchronous Phase 1 forcing the C fallback, per underlying C."""
    def all_bottom_schedule(horizon=24):
        builder = ScheduleBuilder(3, 1, horizon)
        builder.delay(1, 0, 1, 3)
        builder.delay(2, 1, 1, 3)
        builder.delay(0, 2, 1, 3)
        builder.delay(2, 0, 2, 3)
        builder.delay(0, 1, 2, 3)
        builder.delay(1, 2, 2, 3)
        return builder.build()

    results = {}
    for name, underlying in (
        ("chandra_toueg_C", ChandraTouegES),
        ("hurfin_raynal_C", HurfinRaynalES),
    ):
        trace = run_algorithm(
            ATt2.factory(underlying), all_bottom_schedule(), [4, 5, 6]
        )
        results[name] = trace.global_decision_round()
    return results


def test_underlying_consensus_ablation(benchmark):
    results = benchmark(fallback_latency)
    emit(
        format_table(
            ["underlying C", "global round after ⊥-fallback"],
            list(results.items()),
            title="Ablation: fallback latency by underlying consensus",
        )
    )
    # HR's 2-round cycles beat CT's 3-round cycles in the fallback.
    assert results["hurfin_raynal_C"] < results["chandra_toueg_C"]
