"""Driver-memory bench: a streamed XXL sweep stays under a fixed RSS budget.

The streaming path (``repro sweep --spool``, :func:`repro.engine.runner.
stream_batch`) bounds the driver to one record in flight: everything
else lands in the append-only JSONL spool as it completes, and the
canonical export is rebuilt from the spool afterwards.  This bench runs
an n = 250 lean sweep through that path in a child interpreter and
checks the child's peak RSS against the budget in
``benchmarks/memory_floor.json`` — the same pattern as the nightly
speedup floors: a deliberately generous ceiling, so only structural
regressions (the driver quietly accumulating records or traces again)
trip it, never allocator noise.

Peak RSS is a low-noise measurement (unlike one-shot wall-clock), so
the ``kernel-bench`` CI lane asserts the ceiling on every push via
``REPRO_BENCH_ASSERT_MEMORY=1``; without the knob the bench only
reports the number.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from conftest import emit

FLOOR_FILE = os.path.join(os.path.dirname(__file__), "memory_floor.json")

#: The measured sweep: one instance per family at n = 250, the two
#: delivery-bound algorithms that bracket the stock set's memory
#: behaviour (suspicion-set state vs counter state) — heavy enough to
#: expose accumulation, light enough for every push.
SWEEP_ARGS = (
    "sweep", "--n", "250", "--t", "16",
    "--algorithms", "adiamond_s,chandra_toueg",
    "--cases-per-family", "1", "--seed", "20260730",
    "--backend", "serial", "--trace", "lean",
)
EXPECTED_CASES = 16  # 8 schedule families x 2 algorithms

#: Child driver: run the CLI in a fresh interpreter and report that
#: process's own peak RSS, so the measurement can never be polluted by
#: pytest's (or earlier benches') high-water mark.
_CHILD = """\
import json, resource, sys
from repro.cli import main
rc = main(sys.argv[1:])
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":  # ru_maxrss is bytes there, KB on Linux
    peak //= 1024
print(json.dumps({"rc": rc, "peak_kb": peak}))
"""


def _streamed_sweep_peak_kb(spool: str) -> int:
    """Peak RSS (KB) of a child driver streaming the bench sweep."""
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, *SWEEP_ARGS, "--spool", spool],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, (
        f"streamed bench sweep failed (rc={proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    assert report["rc"] == 0, f"sweep exited {report['rc']}"
    return report["peak_kb"]


@pytest.mark.smoke
def test_streamed_sweep_memory_ceiling(tmp_path):
    spool = str(tmp_path / "spool.jsonl")
    peak_kb = _streamed_sweep_peak_kb(spool)

    with open(FLOOR_FILE, "r", encoding="utf-8") as handle:
        budget_kb = json.load(handle)["streamed_sweep_peak_rss_kb"]
    emit(
        f"streamed n=250 sweep: driver peak RSS {peak_kb} KB "
        f"(budget {budget_kb} KB, "
        f"{100 * peak_kb / budget_kb:.0f}% of ceiling)"
    )

    # The run must actually have streamed: the spool alone rebuilds the
    # complete, canonically-ordered result.
    from repro.engine import BatchResult

    result = BatchResult.load_spool(spool)
    assert result.case_count == EXPECTED_CASES
    assert not result.violations()

    if os.environ.get("REPRO_BENCH_ASSERT_MEMORY") == "1":
        assert peak_kb <= budget_kb, (
            f"streamed sweep driver peaked at {peak_kb} KB, over the "
            f"{budget_kb} KB budget in {FLOOR_FILE} — the streaming "
            f"path is accumulating per-case state again"
        )
