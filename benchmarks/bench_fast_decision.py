"""E4 — Figure 2 / Lemma 13: A_{t+2}'s fast decision, swept.

Sweeps (n, t) and synchronous crash patterns: A_{t+2} globally decides at
**exactly t + 2** in every synchronous run — independently of the
underlying consensus module C (we run both the Chandra–Toueg-style and
Hurfin–Raynal-style C to show the fast path never consults it).
"""

import pytest

from repro import ATt2, ChandraTouegES, HurfinRaynalES, Schedule
from repro.analysis.sweep import run_case
from repro.analysis.tables import format_table
from repro.sim.random_schedules import random_scs_schedule
from repro.workloads import block_crashes, serial_cascade, value_hiding_chain

from conftest import emit

SYSTEMS = [(4, 1), (5, 2), (7, 3), (9, 4)]


def workloads(n, t):
    horizon = t + 8
    out = [
        ("failure_free", Schedule.failure_free(n, t, horizon)),
        ("cascade", serial_cascade(n, t, horizon)),
        ("hiding_chain", value_hiding_chain(n, t, horizon)),
        ("block", block_crashes(n, t, horizon)),
    ]
    for seed in range(10):
        out.append(
            (f"random_scs_{seed}", random_scs_schedule(
                n, t, seed, horizon=horizon))
        )
    return out


def sweep_fast_decision(n, t, underlying):
    rows = []
    for name, schedule in workloads(n, t):
        record, _ = run_case(
            "att2", ATt2.factory(underlying), name, schedule,
            list(range(n)),
        )
        rows.append((name, record.global_round, record.agreement_ok))
    return rows


@pytest.mark.parametrize("n,t", SYSTEMS)
def test_fast_decision_sweep(benchmark, n, t):
    rows = benchmark.pedantic(
        sweep_fast_decision, args=(n, t, ChandraTouegES),
        rounds=1, iterations=1,
    )
    emit(
        format_table(
            ["workload", "global round", "agreement"],
            rows,
            title=f"E4: A_t+2 fast decision (n={n}, t={t}; paper: t+2={t + 2})",
        )
    )
    for name, global_round, agreement_ok in rows:
        assert global_round == t + 2, (name, global_round)
        assert agreement_ok


def test_fast_decision_independent_of_underlying(benchmark):
    n, t = 5, 2

    def both():
        return (
            sweep_fast_decision(n, t, ChandraTouegES),
            sweep_fast_decision(n, t, HurfinRaynalES),
        )

    with_ct, with_hr = benchmark.pedantic(both, rounds=1, iterations=1)
    assert with_ct == with_hr
