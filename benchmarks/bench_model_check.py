"""E1b — bounded exhaustive safety checking against asynchronous adversaries.

Extends the E1 serial-run exhaustion with *asynchronous* adversaries:
every combination of (one crash with any delivery subset) × (delayed
messages in the first rounds) within the budget.  FloodSetWS — the t + 1
algorithm A_{t+2} is built from — violates agreement inside the budget;
every indulgent algorithm survives all of it.  The checker returns the
minimal-ish witness schedule, printed below.
"""

from repro import ATt2, ATt2Optimized, FloodSetWS, HurfinRaynalES
from repro.analysis.tables import format_table
from repro.lowerbound.model_check import (
    AdversaryBudget,
    check_consensus_safety,
)

from conftest import emit

BUDGET = AdversaryBudget(
    max_crashes=1, crash_rounds=2, async_rounds=2, max_delays_per_round=2
)


def census():
    rows = []
    witness = None
    for name, factory in (
        ("floodset_ws", FloodSetWS),
        ("att2", ATt2.factory()),
        ("att2_optimized", ATt2Optimized.factory()),
        ("hurfin_raynal", HurfinRaynalES),
    ):
        result = check_consensus_safety(
            factory, [0, 1, 1], t=1, budget=BUDGET, horizon=24
        )
        rows.append(
            (
                name,
                result.runs,
                "SAFE" if result.safe else "VIOLATED",
                result.best_global_round or "-",
                result.worst_global_round or "-",
            )
        )
        if not result.safe and witness is None:
            witness = result
    return rows, witness


def test_bounded_model_check(benchmark):
    rows, witness = benchmark.pedantic(census, rounds=1, iterations=1)
    emit(
        format_table(
            ["algorithm", "schedules checked", "safety", "best round",
             "worst round"],
            rows,
            title="E1b: exhaustive bounded-asynchrony safety check "
                  "(n=3, t=1)",
        )
    )
    if witness is not None:
        emit(
            "FloodSetWS witness adversary:\n"
            + witness.violation.describe()
            + "\n  -> " + "; ".join(witness.violation_detail)
        )
    by_name = {row[0]: row for row in rows}
    assert by_name["floodset_ws"][2] == "VIOLATED"
    for name in ("att2", "att2_optimized", "hurfin_raynal"):
        assert by_name[name][2] == "SAFE", name
        # Everything within the budget decided within the horizon.
