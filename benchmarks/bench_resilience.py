"""E10 — the resilience price: t < n/2 is necessary for indulgence.

Chandra & Toueg's majority requirement, reproduced as a split-brain run:
with t >= n/2 the ES constraints admit a partition into two halves of size
n − t, each half receives its quota of n − t messages per round, suspects
the other half, sees |Halt| = t (no false-suspicion evidence!), and
confidently decides its own minimum at round t + 2.  The same schedule is
impossible in SCS, where FloodSet tolerates up to n − 1 crashes.
"""

from repro import ATt2, FloodSet, Schedule
from repro.analysis.metrics import check_agreement
from repro.analysis.tables import format_table
from repro.model.es import is_es
from repro.model.scs import check_scs
from repro.sim.kernel import run_algorithm
from repro.workloads import partitioned_prefix

from conftest import emit

CASES = [(4, 2), (6, 3), (8, 4)]


def split_brain_rows():
    rows = []
    for n, t in CASES:
        schedule = partitioned_prefix(
            n, t, 2 * t + 6, rounds=2 * t + 4, heal_at=2 * t + 6
        )
        assert is_es(schedule, require_sync_by=None)
        half = n // 2
        proposals = [0] * half + [1] * (n - half)
        factory = ATt2.factory(allow_unsafe_resilience=True)
        trace = run_algorithm(factory, schedule, proposals)
        rows.append(
            (
                n,
                t,
                str(sorted(trace.decided_values())),
                trace.global_decision_round(),
                "VIOLATED" if check_agreement(trace) else "ok",
            )
        )
    return rows


def test_split_brain_disagreement(benchmark):
    rows = benchmark(split_brain_rows)
    emit(
        format_table(
            ["n", "t", "decisions", "round", "agreement"],
            rows,
            title="E10: split-brain under t >= n/2 (ES-legal partition)",
        )
    )
    for n, t, decisions, round_, agreement in rows:
        del n, round_
        assert decisions == "[0, 1]", (t, decisions)
        assert agreement == "VIOLATED"


def test_synchronous_model_has_no_majority_requirement(benchmark):
    """FloodSet in SCS survives t = n - 2 crashes (non-indulgent)."""

    def run():
        n, t = 5, 3
        schedule = Schedule.synchronous(
            n, t, t + 3,
            crashes={0: (1, [1]), 1: (2, [2]), 2: (3, [])},
        )
        return run_algorithm(FloodSet, schedule, [0, 4, 3, 2, 1])

    trace = benchmark(run)
    assert not check_agreement(trace)
    assert trace.global_decision_round() == 4  # t + 1

    # The split-brain schedule is rejected by the SCS validator.
    partition = partitioned_prefix(4, 2, 10, rounds=8, heal_at=10)
    assert check_scs(partition)
