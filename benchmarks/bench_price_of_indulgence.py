"""E5 — the headline table: the inherent price of indulgence.

Reproduces the paper's central comparison (Sections 1.3–1.4): worst-case
global decision round over synchronous runs, per algorithm and model.

    FloodSet (SCS)        : t + 1   — the synchronous optimum
    A_{t+2} (ES)          : t + 2   — the paper's algorithm, tight
    A_◇S (ES/◇S)          : t + 2   — Figure 3 transposition
    Hurfin-Raynal (ES/◇S) : 2t + 2  — previously best indulgent algorithm
    Chandra-Toueg (ES/◇S) : 3t + 3  — classic rotating coordinator

The price of indulgence is exactly one round.  The (algorithm × workload)
grid is executed as one batch on the engine; worst cases and witnesses
come from the aggregated :class:`~repro.engine.results.BatchResult`.
"""

import pytest

from repro import Schedule
from repro.analysis.tables import format_table
from repro.engine import cases_from, run_batch
from repro.workloads import coordinator_killer, serial_cascade, value_hiding_chain

from conftest import bench_executor, emit, shared_cache

N, T = 5, 2
HORIZON = 24

ALGORITHMS = [
    ("floodset", "FloodSet (SCS)", T + 1),
    ("att2", "A_t+2 (ES)", T + 2),
    ("adiamond_s", "A_dS (ES)", T + 2),
    ("hurfin_raynal", "Hurfin-Raynal (ES)", 2 * T + 2),
    ("chandra_toueg", "Chandra-Toueg (ES)", 3 * T + 3),
]


def synchronous_workloads():
    return [
        ("failure_free", Schedule.failure_free(N, T, HORIZON)),
        ("cascade", serial_cascade(N, T, HORIZON)),
        ("hiding_chain", value_hiding_chain(N, T, HORIZON)),
        ("killer2", coordinator_killer(N, T, HORIZON, rounds_per_cycle=2)),
        ("killer3", coordinator_killer(N, T, HORIZON, rounds_per_cycle=3)),
    ]


def price_table():
    result = run_batch(cases_from(
        (name, workload, schedule, range(N))
        for name, _label, _expected in ALGORITHMS
        for workload, schedule in synchronous_workloads()
    ), executor=bench_executor(), cache=shared_cache())
    rows = []
    for name, label, expected in ALGORITHMS:
        worst, witness = result.worst_case(name)
        rows.append((label, worst, expected, witness))
    return rows


@pytest.mark.smoke
def test_price_of_indulgence(benchmark):
    rows = benchmark(price_table)
    emit(
        format_table(
            ["algorithm", "worst sync round", "paper", "witness workload"],
            rows,
            title=f"E5: the price of indulgence (n={N}, t={T})",
        )
    )
    for name, worst, expected, _witness in rows:
        assert worst == expected, (name, worst, expected)
    # The headline: one-round gap between SCS optimum and ES optimum.
    by_name = {name: worst for name, worst, _e, _w in rows}
    assert by_name["A_t+2 (ES)"] - by_name["FloodSet (SCS)"] == 1
