"""E5 — the headline table: the inherent price of indulgence.

Reproduces the paper's central comparison (Sections 1.3–1.4): worst-case
global decision round over synchronous runs, per algorithm and model.

    FloodSet (SCS)        : t + 1   — the synchronous optimum
    A_{t+2} (ES)          : t + 2   — the paper's algorithm, tight
    A_◇S (ES/◇S)          : t + 2   — Figure 3 transposition
    Hurfin-Raynal (ES/◇S) : 2t + 2  — previously best indulgent algorithm
    Chandra-Toueg (ES/◇S) : 3t + 3  — classic rotating coordinator

The price of indulgence is exactly one round.
"""

from repro import (
    ADiamondS,
    ATt2,
    ChandraTouegES,
    FloodSet,
    HurfinRaynalES,
    Schedule,
)
from repro.analysis.sweep import worst_case_round
from repro.analysis.tables import format_table
from repro.workloads import coordinator_killer, serial_cascade, value_hiding_chain

from conftest import emit

N, T = 5, 2
HORIZON = 24


def synchronous_workloads():
    return [
        ("failure_free", Schedule.failure_free(N, T, HORIZON)),
        ("cascade", serial_cascade(N, T, HORIZON)),
        ("hiding_chain", value_hiding_chain(N, T, HORIZON)),
        ("killer2", coordinator_killer(N, T, HORIZON, rounds_per_cycle=2)),
        ("killer3", coordinator_killer(N, T, HORIZON, rounds_per_cycle=3)),
    ]


def price_table():
    proposals = list(range(N))
    algorithms = [
        ("FloodSet (SCS)", FloodSet, T + 1),
        ("A_t+2 (ES)", ATt2.factory(), T + 2),
        ("A_dS (ES)", ADiamondS.factory(), T + 2),
        ("Hurfin-Raynal (ES)", HurfinRaynalES, 2 * T + 2),
        ("Chandra-Toueg (ES)", ChandraTouegES, 3 * T + 3),
    ]
    rows = []
    for name, factory, expected in algorithms:
        worst, witness = worst_case_round(
            factory, synchronous_workloads(), proposals
        )
        rows.append((name, worst, expected, witness))
    return rows


def test_price_of_indulgence(benchmark):
    rows = benchmark(price_table)
    emit(
        format_table(
            ["algorithm", "worst sync round", "paper", "witness workload"],
            rows,
            title=f"E5: the price of indulgence (n={N}, t={T})",
        )
    )
    for name, worst, expected, _witness in rows:
        assert worst == expected, (name, worst, expected)
    # The headline: one-round gap between SCS optimum and ES optimum.
    by_name = {name: worst for name, worst, _e, _w in rows}
    assert by_name["A_t+2 (ES)"] - by_name["FloodSet (SCS)"] == 1
